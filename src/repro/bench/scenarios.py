"""The one place benchmark workloads are defined.

Historically each script under ``benchmarks/`` hand-rolled its own
simulator setup; this module centralizes those definitions so the pytest
benchmarks (via ``benchmarks/conftest.py``) and the continuous-bench
registry (``python -m repro bench``) run *the same* workloads:

* :class:`BenchScale` + :func:`scale_for` — the paper-scale vs
  minutes-scale knobs previously private to ``conftest.py``;
* :func:`build_library_sim` / :func:`build_full_library_sim` — prepared
  (trace assigned, not yet run) digital-twin simulations for the profile
  benchmarks and the Figure 9 full-library replay;
* :func:`headline_metrics` — the flat, deterministic simulated-time
  metric set every bench artifact records;
* :func:`default_registry` — the named scenarios of the ``fast`` (every
  PR) and ``full`` (paper scale) suites.

Scenario seeds are explicit and fixed: for a given seed the simulator is
bit-deterministic, so any change in a scenario's simulated metrics is a
behaviour change, never noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.metrics import SimulationReport
from ..core.sim import LibrarySimulation, SimConfig
from .registry import ScenarioRegistry, ScenarioRun


@dataclass(frozen=True)
class BenchScale:
    """Scaling knobs for the simulated evaluation."""

    interval_hours: float
    warmup_hours: float
    cooldown_hours: float
    rate_factor: float  # multiplies each profile's request rate
    num_platters: int

    def trace_for(self, profile, seed: int = 0, stream: int = 30):
        """Interval trace of ``profile`` at this scale (trace, start, end)."""
        from ..workload.generator import WorkloadGenerator

        generator = WorkloadGenerator(seed=seed)
        return generator.interval_trace(
            profile.mean_rate_per_second * self.rate_factor,
            interval_hours=self.interval_hours,
            warmup_hours=self.warmup_hours,
            cooldown_hours=self.cooldown_hours,
            size_model=profile.size_model,
            burstiness=profile.burstiness,
            stream=stream,
        )


#: Paper-scale: 12-hour measured intervals at full request rates.
FULL_SCALE = BenchScale(
    interval_hours=12.0,
    warmup_hours=2.0,
    cooldown_hours=2.0,
    rate_factor=1.0,
    num_platters=3000,
)

#: Minutes-scale: the default for the pytest benchmark suite.
SMALL_SCALE = BenchScale(
    interval_hours=1.5,
    warmup_hours=0.25,
    cooldown_hours=0.25,
    rate_factor=0.7,
    num_platters=1200,
)

#: Seconds-scale: per-repetition budget of the continuous ``fast`` suite.
BENCH_SCALE = BenchScale(
    interval_hours=0.75,
    warmup_hours=0.125,
    cooldown_hours=0.125,
    rate_factor=0.5,
    num_platters=900,
)


def scale_for(full: bool) -> BenchScale:
    """The pytest-benchmark scale: paper scale when ``full``, else small."""
    return FULL_SCALE if full else SMALL_SCALE


def build_library_sim(
    profile,
    scale: BenchScale = SMALL_SCALE,
    seed: int = 0,
    skew=None,
    **config_kwargs,
) -> LibrarySimulation:
    """A prepared (trace assigned, unrun) library run of ``profile``."""
    trace, start, end = scale.trace_for(profile, seed=seed, stream=30 + seed)
    config_kwargs.setdefault("num_platters", scale.num_platters)
    sim = LibrarySimulation(SimConfig(seed=seed, **config_kwargs))
    sim.assign_trace(trace, start, end, skew=skew)
    return sim


def build_full_library_sim(
    mbps: float, window_hours: float, seed: int = 12
) -> LibrarySimulation:
    """The Figure 9 replay: full-capacity library, ~100 MB files, 1.6 reads/s.

    The paper derives 1.6 reads/s from the 0.3 reads/s early-deployment mean
    with 5% deletion and 10% cool-down over 9 age-folds
    (``repro.workload.lifecycle``).
    """
    from ..library.layout import LibraryConfig
    from ..workload.generator import WorkloadGenerator

    library = LibraryConfig()
    generator = WorkloadGenerator(seed=seed)
    trace, start, end = generator.interval_trace(
        FIG9_RATE_READS_PER_SEC,
        interval_hours=window_hours,
        warmup_hours=0.5,
        cooldown_hours=0.5,
        fixed_size=FIG9_FILE_BYTES,
        stream=60,
    )
    sim = LibrarySimulation(
        SimConfig(
            drive_throughput_mbps=float(mbps),
            num_platters=library.storage_capacity,  # fully populated
            seed=seed,
            library=library,
        )
    )
    sim.assign_trace(trace, start, end)
    return sim


FIG9_RATE_READS_PER_SEC = 1.6
FIG9_FILE_BYTES = 100_000_000


def headline_metrics(report: SimulationReport) -> Dict[str, float]:
    """The flat simulated-time metric set a bench artifact records.

    Every value is a pure function of the seed (the simulator is
    deterministic), so the comparator requires them to match a same-seed
    baseline *exactly* — any drift is a behaviour change.
    """
    completions = report.completions
    metrics: Dict[str, float] = {
        "requests_submitted": float(report.requests_submitted),
        "requests_completed": float(report.requests_completed),
        "completion_p50_seconds": completions.median,
        "completion_p99_seconds": completions.p99,
        "completion_p999_seconds": completions.p999,
        "bytes_read": report.bytes_read,
        "drive_utilization": report.drive_utilization.utilization,
        "congestion_overhead": report.shuttles.congestion_overhead,
        "simulated_seconds": report.simulated_seconds,
    }
    if report.resilience is not None:
        metrics["availability"] = report.resilience.availability
        metrics["faults_injected"] = float(report.resilience.faults_injected)
        metrics["faults_repaired"] = float(report.resilience.faults_repaired)
    return metrics


# ------------------------------------------------------------------ #
# Scenario builders (each returns a fresh ScenarioRun per repetition)
# ------------------------------------------------------------------ #


def _library_profile_run(profile_name: str, scale: BenchScale, seed: int) -> ScenarioRun:
    from ..workload.profiles import profile_by_name

    sim = build_library_sim(profile_by_name(profile_name), scale=scale, seed=seed)
    return ScenarioRun(
        execute=lambda: headline_metrics(sim.run()),
        simulation=sim.sim,
        kernel=sim.kernel,
    )


def _full_library_run(mbps: float, window_hours: float, seed: int) -> ScenarioRun:
    sim = build_full_library_sim(mbps, window_hours, seed=seed)
    return ScenarioRun(
        execute=lambda: headline_metrics(sim.run()),
        simulation=sim.sim,
        kernel=sim.kernel,
    )


def _chaos_run(scale: BenchScale, seed: int) -> ScenarioRun:
    from ..faults import ChaosConfig, FaultModel, FaultSchedule
    from ..workload.profiles import IOPS

    sim = build_library_sim(
        IOPS, scale=scale, seed=seed, transient_read_error_prob=0.002
    )
    horizon = (
        scale.interval_hours + scale.warmup_hours + scale.cooldown_hours
    ) * 3600.0
    chaos = ChaosConfig(
        horizon_seconds=horizon,
        shuttle=FaultModel(mtbf_seconds=1800.0, mttr_seconds=300.0),
        drive=FaultModel(mtbf_seconds=2400.0, mttr_seconds=600.0),
        seed=seed,
    )
    schedule = FaultSchedule.generate(
        chaos, sim.config.num_shuttles, sim.config.num_drives
    )
    sim.apply_fault_schedule(schedule)
    return ScenarioRun(
        execute=lambda: headline_metrics(sim.run()),
        simulation=sim.sim,
        kernel=sim.kernel,
    )


def _event_loop_run(num_events: int, seed: int) -> ScenarioRun:
    from ..core.events import Simulation

    sim = Simulation()

    def execute() -> Dict[str, float]:
        # Pure engine overhead: schedule, fire, and (10%) cancel events.
        counter = {"fired": 0}

        def tick() -> None:
            counter["fired"] += 1

        for i in range(num_events):
            event = sim.schedule(i * 0.001, tick, label="tick")
            if i % 10 == seed % 10:
                event.cancel()
        sim.run()
        return {
            "events_fired": float(counter["fired"]),
            "simulated_seconds": sim.now,
        }

    return ScenarioRun(execute=execute, simulation=sim)


def _workload_run(days: int, seed: int) -> ScenarioRun:
    from ..workload.analysis import (
        peak_over_mean_curve,
        read_size_histogram,
        writes_over_reads,
    )
    from ..workload.generator import WorkloadGenerator

    def execute() -> Dict[str, float]:
        generator = WorkloadGenerator(seed=seed)
        ingress = generator.ingress_series(days)
        reads = generator.characterization_reads(days)
        ratios = writes_over_reads(ingress, reads)
        histogram = read_size_histogram(reads)
        _, pom = peak_over_mean_curve(ingress, [1, 7, 30])
        return {
            "reads_analyzed": float(len(reads)),
            "mean_count_ratio": ratios.mean_count_ratio,
            "mean_byte_ratio": ratios.mean_byte_ratio,
            "small_read_ops_percent": histogram.count_percent[0],
            "peak_over_mean_1d": pom[0],
        }

    return ScenarioRun(execute=execute)


def build_qos_sim(
    fetch_policy: str,
    scale: BenchScale = SMALL_SCALE,
    seed: int = 0,
    num_drives: int = 6,
    total_rate_per_second: float = 6.0,
    hot_share: float = 0.8,
) -> LibrarySimulation:
    """A prepared multi-tenant run under a skewed (hot-tenant) mix.

    One bulk tenant carries ``hot_share`` of the offered rate; expedited
    and standard tenants share the rest. ``num_drives`` is deliberately
    small so the library queues — QoS policies only differ under
    contention. The same (scale, seed) always produces the identical
    trace and mix, so an arrival-order and a deadline-aware twin see
    byte-identical inputs.
    """
    from ..tenancy import skewed_mix
    from ..workload.generator import WorkloadGenerator
    from ..workload.profiles import IOPS

    registry = skewed_mix(
        num_tenants=6,
        seed=seed,
        total_rate_per_second=total_rate_per_second * scale.rate_factor,
        hot_share=hot_share,
    )
    generator = WorkloadGenerator(seed=seed)
    trace, start, end = generator.multi_tenant_trace(
        registry,
        interval_hours=scale.interval_hours,
        warmup_hours=scale.warmup_hours,
        cooldown_hours=scale.cooldown_hours,
        size_model=IOPS.size_model,
    )
    sim = LibrarySimulation(
        SimConfig(
            seed=seed,
            num_platters=scale.num_platters,
            num_drives=num_drives,
            num_shuttles=num_drives,
            fetch_policy=fetch_policy,
            tenancy=registry,
        )
    )
    sim.assign_trace(trace, start, end)
    return sim


def qos_ablation_metrics(
    arrival: SimulationReport, deadline: SimulationReport
) -> Dict[str, float]:
    """Side-by-side QoS metrics of the arrival vs deadline-aware twin runs.

    The ``deadline_beats_arrival_*`` entries encode the acceptance gates
    (expedited p99 and Jain fairness) as 1.0/0.0 simulated metrics, so the
    bench comparator's EXACT-match check fails CI if a change ever stops
    the deadline-aware policy from winning.
    """
    metrics: Dict[str, float] = {}
    for label, report in (("arrival", arrival), ("deadline", deadline)):
        qos = report.qos
        if qos is None:
            raise ValueError(f"{label} run produced no QoS block")
        metrics[f"{label}_requests_completed"] = float(report.requests_completed)
        metrics[f"{label}_jain_index"] = qos.jain_fairness
        metrics[f"{label}_deadline_misses"] = float(qos.deadline_misses)
        for cls in ("expedited", "standard", "bulk"):
            row = qos.per_class.get(cls)
            if row is not None:
                metrics[f"{label}_{cls}_p99_seconds"] = row.completions.p99
                metrics[f"{label}_{cls}_slo_attainment"] = row.slo_attainment
    metrics["deadline_beats_arrival_p99"] = (
        1.0
        if metrics["deadline_expedited_p99_seconds"]
        < metrics["arrival_expedited_p99_seconds"]
        else 0.0
    )
    metrics["deadline_beats_arrival_jain"] = (
        1.0 if metrics["deadline_jain_index"] > metrics["arrival_jain_index"] else 0.0
    )
    return metrics


def _qos_ablation_run(scale: BenchScale, seed: int) -> ScenarioRun:
    sims = {
        policy: build_qos_sim(policy, scale=scale, seed=seed)
        for policy in ("arrival", "deadline")
    }
    return ScenarioRun(
        execute=lambda: qos_ablation_metrics(
            sims["arrival"].run(), sims["deadline"].run()
        ),
        simulation=sims["deadline"].sim,
        kernel=sims["deadline"].kernel,
    )


def fleet_outage_metrics(replicated, single) -> Dict[str, float]:
    """Replicated fleet vs single library under the same library loss.

    Both arguments are :class:`repro.fleet.FleetReport` runs that saw the
    identical ``lib:0`` outage. The ``*_gate`` entries encode the
    acceptance criteria as 1.0/0.0 simulated metrics — replication keeps
    reads >= 99% available while the unreplicated library drops below,
    with failovers and hedge wins actually exercised — so the bench
    comparator's EXACT-match check fails CI if replication ever stops
    carrying the outage.
    """
    metrics: Dict[str, float] = {}
    for label, report in (("replicated", replicated), ("single", single)):
        fleet = report.fleet
        metrics[f"{label}_read_availability"] = fleet.read_availability
        metrics[f"{label}_requests_submitted"] = float(fleet.requests_submitted)
        metrics[f"{label}_requests_served"] = float(fleet.requests_served)
        metrics[f"{label}_served_degraded"] = float(fleet.served_degraded)
        metrics[f"{label}_failovers"] = float(fleet.failovers)
        metrics[f"{label}_hedge_wins"] = float(fleet.hedge_wins)
        metrics[f"{label}_replication_lost"] = float(fleet.replication_lost)
    metrics["replicated_availability_ge_99_gate"] = (
        1.0 if replicated.fleet.read_availability >= 0.99 else 0.0
    )
    metrics["single_availability_lt_99_gate"] = (
        1.0 if single.fleet.read_availability < 0.99 else 0.0
    )
    metrics["replicated_failovers_nonzero_gate"] = (
        1.0 if replicated.fleet.failovers > 0 else 0.0
    )
    metrics["replicated_hedge_wins_nonzero_gate"] = (
        1.0 if replicated.fleet.hedge_wins > 0 else 0.0
    )
    return metrics


def _fleet_outage_run(scale: BenchScale, seed: int) -> ScenarioRun:
    from ..faults import DomainOutage, FaultKind, FleetFaultSchedule
    from ..fleet import FleetConfig, FleetCoordinator
    from ..workload.profiles import IOPS

    trace, start, end = scale.trace_for(IOPS, seed=seed, stream=30 + seed)
    horizon = end + scale.cooldown_hours * 3600.0
    # One whole-library loss squarely inside the measured window, long
    # enough that the single library's retry ladder cannot ride it out.
    outage = DomainOutage(
        domain="lib:0",
        start=start + 0.2 * (end - start),
        duration=0.5 * (end - start),
        kind=FaultKind.TRANSIENT,
    )
    member = SimConfig(num_platters=scale.num_platters, seed=seed)

    def coordinator_for(libraries, replicas, isolation, hedge):
        config = FleetConfig(
            num_libraries=libraries,
            replicas=replicas,
            isolation=isolation,
            member=member,
            hedge=hedge,
            hedge_delay_seconds=60.0,
            seed=seed,
        )
        coordinator = FleetCoordinator(config)
        coordinator.assign_trace(trace, start, end)
        coordinator.apply_fault_schedule(
            FleetFaultSchedule([outage], horizon_seconds=horizon)
        )
        return coordinator

    replicated = coordinator_for(3, 2, "power", hedge=True)
    single = coordinator_for(1, 1, "library", hedge=False)
    return ScenarioRun(
        execute=lambda: fleet_outage_metrics(replicated.run(), single.run())
    )


#: Library-size axis of the dispatch scale sweep: (num_platters,
#: num_drives == num_shuttles) pairs, smallest first.
SWEEP_SIZES = ((300, 3), (900, 6), (1800, 9))

#: Request-rate axis: multiples of the IOPS profile's mean rate.
SWEEP_RATE_FACTORS = (0.25, 0.5)


def _dispatch_sweep_run(seed: int) -> ScenarioRun:
    """The dispatch scale sweep: one short run per (size, rate) cell.

    Each cell is an independent seconds-scale IOPS run; the deterministic
    per-cell outcomes (completions, p50, dispatch pass/short-circuit/
    assignment counters) become simulated metrics, while the wall-bound
    events/s-vs-library-size curve goes into the artifact's ``extra``
    block, which the comparator ignores.
    """
    from time import perf_counter

    from ..workload.profiles import IOPS

    cells = []
    for platters, drives in SWEEP_SIZES:
        for rate in SWEEP_RATE_FACTORS:
            scale = BenchScale(
                interval_hours=0.5,
                warmup_hours=0.125,
                cooldown_hours=0.125,
                rate_factor=rate,
                num_platters=platters,
            )
            sim = build_library_sim(
                IOPS,
                scale=scale,
                seed=seed,
                num_drives=drives,
                num_shuttles=drives,
            )
            cells.append((platters, drives, rate, sim))
    curve: List[Dict[str, float]] = []

    def execute() -> Dict[str, float]:
        del curve[:]
        metrics: Dict[str, float] = {}
        for platters, drives, rate, sim in cells:
            t0 = perf_counter()
            report = sim.run()
            wall = perf_counter() - t0
            counters = sim.kernel.ctx.counters
            key = f"p{platters}_r{int(rate * 100)}"
            metrics[f"{key}_requests_completed"] = float(report.requests_completed)
            metrics[f"{key}_completion_p50_seconds"] = report.completions.median
            metrics[f"{key}_dispatch_passes"] = counters.dispatch_passes.value
            metrics[f"{key}_dispatch_short_circuits"] = (
                counters.dispatch_short_circuits.value
            )
            metrics[f"{key}_dispatch_assignments"] = (
                counters.dispatch_assignments.value
            )
            curve.append(
                {
                    "num_platters": float(platters),
                    "num_drives": float(drives),
                    "rate_factor": rate,
                    "events_processed": float(sim.events_processed),
                    "wall_seconds": wall,
                    "events_per_second": (
                        sim.events_processed / wall if wall > 0 else 0.0
                    ),
                }
            )
        return metrics

    return ScenarioRun(execute=execute, extra=lambda: {"curve": list(curve)})


def _engine_sweep_run(seed: int) -> ScenarioRun:
    """The engine scale sweep: scheduler backends across library sizes.

    One cell per (size, backend). The deterministic per-cell outcomes —
    completions, p50, events processed, and the engine's push/pop/
    cancelled-skip/resize counters — become simulated metrics, so the
    committed baseline pins both that each backend replays exactly *and*
    that heap and calendar agree on every logic-level count (only the
    calendar's resize count is backend-specific). The wall-bound
    events/s-per-backend curve goes into ``extra``.
    """
    from time import perf_counter

    from ..workload.profiles import IOPS

    cells = []
    for platters, drives in SWEEP_SIZES:
        for backend in ("heap", "calendar"):
            scale = BenchScale(
                interval_hours=0.5,
                warmup_hours=0.125,
                cooldown_hours=0.125,
                rate_factor=0.5,
                num_platters=platters,
            )
            sim = build_library_sim(
                IOPS,
                scale=scale,
                seed=seed,
                num_drives=drives,
                num_shuttles=drives,
                event_scheduler=backend,
            )
            cells.append((platters, backend, sim))
    curve: List[Dict[str, float]] = []

    def execute() -> Dict[str, float]:
        del curve[:]
        metrics: Dict[str, float] = {}
        for platters, backend, sim in cells:
            t0 = perf_counter()
            report = sim.run()
            wall = perf_counter() - t0
            stats = sim.kernel.ctx.sim.scheduler_stats
            key = f"p{platters}_{backend}"
            metrics[f"{key}_requests_completed"] = float(report.requests_completed)
            metrics[f"{key}_completion_p50_seconds"] = report.completions.median
            metrics[f"{key}_events_processed"] = float(sim.events_processed)
            metrics[f"{key}_engine_pushes"] = float(stats["pushes"])
            metrics[f"{key}_engine_pops"] = float(stats["pops"])
            metrics[f"{key}_engine_cancelled_skips"] = float(
                stats["cancelled_skips"]
            )
            metrics[f"{key}_engine_resizes"] = float(stats["resizes"])
            curve.append(
                {
                    "num_platters": float(platters),
                    "backend": backend,
                    "events_processed": float(sim.events_processed),
                    "wall_seconds": wall,
                    "events_per_second": (
                        sim.events_processed / wall if wall > 0 else 0.0
                    ),
                }
            )
        return metrics

    return ScenarioRun(execute=execute, extra=lambda: {"curve": list(curve)})


def _motion_sweep_run(seed: int) -> ScenarioRun:
    """The motion event sweep: fine vs closed-form trips across sizes.

    One cell per (size, motion mode). Each cell's completions, p50, and
    event/engine counts are deterministic and EXACT-gated; the committed
    baseline therefore pins the coarse path's event savings (its
    ``events_processed`` is the structural win) as well as its replay.
    The events/s comparison per mode goes into ``extra``.
    """
    from time import perf_counter

    from ..workload.profiles import IOPS

    cells = []
    for platters, drives in SWEEP_SIZES:
        for mode in ("fine", "coarse"):
            scale = BenchScale(
                interval_hours=0.5,
                warmup_hours=0.125,
                cooldown_hours=0.125,
                rate_factor=0.5,
                num_platters=platters,
            )
            sim = build_library_sim(
                IOPS,
                scale=scale,
                seed=seed,
                num_drives=drives,
                num_shuttles=drives,
                fine_motion_events=(mode == "fine"),
            )
            cells.append((platters, mode, sim))
    curve: List[Dict[str, float]] = []

    def execute() -> Dict[str, float]:
        del curve[:]
        metrics: Dict[str, float] = {}
        for platters, mode, sim in cells:
            t0 = perf_counter()
            report = sim.run()
            wall = perf_counter() - t0
            key = f"p{platters}_{mode}"
            metrics[f"{key}_requests_completed"] = float(report.requests_completed)
            metrics[f"{key}_completion_p50_seconds"] = report.completions.median
            metrics[f"{key}_events_processed"] = float(sim.events_processed)
            curve.append(
                {
                    "num_platters": float(platters),
                    "mode": mode,
                    "events_processed": float(sim.events_processed),
                    "wall_seconds": wall,
                    "events_per_second": (
                        sim.events_processed / wall if wall > 0 else 0.0
                    ),
                }
            )
        return metrics

    return ScenarioRun(execute=execute, extra=lambda: {"curve": list(curve)})


def build_serve_soak(seed: int):
    """The serve_soak scenario's (core, spec) pair, identically tuned.

    Free-running (dilation 0), sampling off — the bench runner owns the
    kernel's single sampler slot during its instrumented pass. The quota
    is tuned so every reject is refill-driven (finite ``Retry-After``,
    retry eventually admitted, zero skips): the burst depth comfortably
    exceeds the largest soak object, and the refill rate is low enough
    that the hot tenant still trips admission under burst arrivals.
    """
    from ..serve import ArchiveServerCore, ServeConfig, SoakSpec

    config = ServeConfig(
        dilation=0.0,
        seed=seed,
        tenants=3,
        quota_mbps=3.0,
        quota_burst_mb=1024.0,
        sample_interval_seconds=0.0,
        sim=SimConfig(
            num_drives=4, num_shuttles=4, num_platters=200, seed=seed
        ),
    )
    return ArchiveServerCore(config), SoakSpec(seed=seed)


def _serve_soak_run(seed: int) -> ScenarioRun:
    """Sustained virtual-time load through the live-serving path.

    Every metric — counters, simulated latency percentiles, the
    all-clients-finished and tracer/controller reject-parity gates — is
    deterministic, so the comparator EXACT-gates the whole serving path:
    catalog, admission, ticket resolution, tracer tap.
    """
    from ..serve import run_soak

    core, spec = build_serve_soak(seed)
    return ScenarioRun(
        execute=lambda: run_soak(core, spec),
        simulation=core.sim,
        kernel=core.kernel,
    )


def _archive_run(payload_bytes: int, seed: int) -> ScenarioRun:
    from ..service import ArchiveService, ServiceConfig

    def execute() -> Dict[str, float]:
        # key_seed pins the per-file encryption keys so the simulated
        # metrics are bit-identical across processes and machines — the
        # comparator treats any drift in them as a behaviour change.
        service = ArchiveService(ServiceConfig(key_seed=seed))
        payload = bytes((seed + i) % 251 for i in range(payload_bytes))
        service.put("bench/roundtrip", payload)
        recovered = service.get("bench/roundtrip")
        report = service.verifier.reports[-1]
        return {
            "payload_bytes": float(payload_bytes),
            "roundtrip_ok": 1.0 if recovered == payload else 0.0,
            "sectors_checked": float(report.sectors_checked),
            "sectors_failed": float(report.sectors_failed),
        }

    return ScenarioRun(execute=execute)


def default_registry() -> ScenarioRegistry:
    """The registry behind ``python -m repro bench``: fast + full suites."""
    registry = ScenarioRegistry()
    registry.add(
        "event_loop",
        "raw discrete-event engine: 50k schedule/cancel/fire cycles",
        suite="fast",
        seed=0,
        build=lambda: _event_loop_run(50_000, seed=0),
        repetitions=3,
        warmup=1,
    )
    registry.add(
        "workload_characterization",
        "Figure 1 statistics over a 60-day synthetic workload",
        suite="fast",
        seed=42,
        build=lambda: _workload_run(60, seed=42),
        repetitions=3,
        warmup=1,
    )
    registry.add(
        "archive_roundtrip",
        "put/verify/get of a ~4 KB payload through the full data path",
        suite="fast",
        seed=7,
        build=lambda: _archive_run(4096, seed=7),
        repetitions=3,
        warmup=1,
    )
    registry.add(
        "simulate_iops",
        "digital twin, IOPS profile, seconds-scale interval",
        suite="fast",
        seed=0,
        build=lambda: _library_profile_run("IOPS", BENCH_SCALE, seed=0),
        repetitions=2,
        warmup=0,
    )
    registry.add(
        "simulate_typical",
        "digital twin, Typical profile, seconds-scale interval",
        suite="fast",
        seed=0,
        build=lambda: _library_profile_run("Typical", BENCH_SCALE, seed=0),
        repetitions=2,
        warmup=0,
    )
    registry.add(
        "chaos_faults",
        "IOPS run under shuttle+drive fault schedule with repair clocks",
        suite="fast",
        seed=3,
        build=lambda: _chaos_run(BENCH_SCALE, seed=3),
        repetitions=2,
        warmup=0,
    )
    registry.add(
        "qos_ablation",
        "arrival vs deadline-aware fetch under a skewed multi-tenant mix",
        suite="fast",
        seed=5,
        build=lambda: _qos_ablation_run(BENCH_SCALE, seed=5),
        repetitions=2,
        warmup=0,
    )
    registry.add(
        "fleet_outage",
        "replicated 3-library fleet vs a single library losing lib:0",
        suite="fast",
        seed=9,
        build=lambda: _fleet_outage_run(BENCH_SCALE, seed=9),
        repetitions=2,
        warmup=0,
    )
    registry.add(
        "dispatch_scale_sweep",
        "dispatch throughput curve over library size x request rate",
        suite="fast",
        seed=4,
        build=lambda: _dispatch_sweep_run(seed=4),
        repetitions=2,
        warmup=0,
    )
    registry.add(
        "engine_scale_sweep",
        "scheduler-backend (heap vs calendar) curve over library size",
        suite="fast",
        seed=4,
        build=lambda: _engine_sweep_run(seed=4),
        repetitions=2,
        warmup=0,
    )
    registry.add(
        "motion_event_sweep",
        "fine vs closed-form shuttle-trip events over library size",
        suite="fast",
        seed=4,
        build=lambda: _motion_sweep_run(seed=4),
        repetitions=2,
        warmup=0,
    )
    registry.add(
        "serve_soak",
        "live-serving path under closed-loop tenant load, virtual time",
        suite="fast",
        seed=11,
        build=lambda: _serve_soak_run(seed=11),
        repetitions=2,
        warmup=0,
    )
    registry.add(
        "fig9_full_library",
        "Figure 9 replay: full library, 100 MB files, 60 MB/s drives",
        suite="fast",
        seed=12,
        build=lambda: _full_library_run(60.0, 0.75, seed=12),
        repetitions=2,
        warmup=0,
    )
    registry.add(
        "simulate_iops_full",
        "digital twin, IOPS profile, paper-scale 12 h interval",
        suite="full",
        seed=0,
        build=lambda: _library_profile_run("IOPS", FULL_SCALE, seed=0),
        repetitions=1,
        warmup=0,
    )
    registry.add(
        "fig9_full_library_full",
        "Figure 9 replay at the paper's 6 h measurement window",
        suite="full",
        seed=12,
        build=lambda: _full_library_run(60.0, 6.0, seed=12),
        repetitions=1,
        warmup=0,
    )
    return registry
