"""Benchmark scenario registry: named, seeded, suite-tagged workloads.

A :class:`Scenario` is the unit of continuous benchmarking: a name, a
suite tag (``fast`` scenarios run on every PR, ``full`` at paper scale),
an explicit seed, warmup/repetition counts, and a zero-argument ``build``
callable producing a fresh :class:`ScenarioRun` per repetition. Keeping
``build`` cheap and the work inside :meth:`ScenarioRun.execute` is what
makes wall-clock numbers honest — setup cost is excluded.

The registry is just a name -> scenario map with duplicate protection;
:func:`repro.bench.scenarios.default_registry` populates it with the
scenarios wrapping the ``benchmarks/`` figures and tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional


#: The suites a scenario may belong to.
SUITES = ("fast", "full")


class BenchError(RuntimeError):
    """Raised on invalid bench usage (unknown scenario, empty baseline...)."""


@dataclass
class ScenarioRun:
    """One prepared repetition of a scenario.

    ``execute`` performs the measured work and returns the scenario's
    headline *simulated-time* metrics (a flat name -> number mapping that
    must be bit-identical across repetitions of the same seed).
    ``simulation`` optionally exposes the underlying event engine so the
    runner can attach a profiler and count events; it is ``None`` for
    scenarios that do not use the discrete-event simulator.
    ``kernel`` optionally exposes the :class:`~repro.core.sim.SimKernel`
    behind ``simulation`` so the runner's instrumented pass can attach a
    sim-time :class:`~repro.observability.monitor.TimeSeriesMonitor`
    (``None`` for scenarios without a library kernel; clean timed
    repetitions never touch it).
    ``extra`` (optional) is called by the runner after the timed
    repetitions and its payload is stored verbatim under the artifact's
    ``"extra"`` key — the home for informational, possibly wall-clock
    data (e.g. a per-cell throughput curve) that must *not* be gated:
    the comparator only reads the perf-metric and ``simulated_metrics``
    keys, so the block is ignored by regression checks.
    """

    execute: Callable[[], Dict[str, float]]
    simulation: Optional[Any] = None
    kernel: Optional[Any] = None
    extra: Optional[Callable[[], Dict[str, Any]]] = None


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible benchmark workload."""

    name: str
    description: str
    suite: str
    seed: int
    build: Callable[[], ScenarioRun]
    repetitions: int = 3
    warmup: int = 1

    def __post_init__(self) -> None:
        if self.suite not in SUITES:
            raise BenchError(
                f"scenario {self.name!r}: suite must be one of {SUITES}, got {self.suite!r}"
            )
        if self.repetitions < 1:
            raise BenchError(f"scenario {self.name!r}: repetitions must be >= 1")
        if self.warmup < 0:
            raise BenchError(f"scenario {self.name!r}: warmup must be >= 0")


class ScenarioRegistry:
    """Name -> :class:`Scenario` map with duplicate and lookup guards."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(self, scenario: Scenario) -> Scenario:
        """Add a built :class:`Scenario`, rejecting duplicate names."""
        if scenario.name in self._scenarios:
            raise BenchError(f"scenario {scenario.name!r} is already registered")
        self._scenarios[scenario.name] = scenario
        return scenario

    def add(
        self,
        name: str,
        description: str,
        suite: str,
        seed: int,
        build: Callable[[], ScenarioRun],
        repetitions: int = 3,
        warmup: int = 1,
    ) -> Scenario:
        """Convenience constructor-and-register in one call."""
        return self.register(
            Scenario(name, description, suite, seed, build, repetitions, warmup)
        )

    def get(self, name: str) -> Scenario:
        """The scenario registered under ``name`` (BenchError if unknown)."""
        try:
            return self._scenarios[name]
        except KeyError:
            known = ", ".join(self.names()) or "(none)"
            raise BenchError(
                f"unknown scenario {name!r}; registered: {known}"
            ) from None

    def names(self) -> List[str]:
        """All registered scenario names, sorted."""
        return sorted(self._scenarios)

    def by_suite(self, suite: str) -> List[Scenario]:
        """Scenarios of one suite, name-sorted for stable run order."""
        if suite not in SUITES:
            raise BenchError(f"unknown suite {suite!r}; suites: {SUITES}")
        return [
            self._scenarios[name]
            for name in self.names()
            if self._scenarios[name].suite == suite
        ]

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        for name in self.names():
            yield self._scenarios[name]
