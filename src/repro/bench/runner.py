"""Benchmark runner: execute scenarios, aggregate, stamp provenance.

For each scenario the runner performs ``warmup`` unmeasured executions,
then ``repetitions`` *clean* timed ones (no allocation tracking, no
observer hooks — wall time and events/sec measure the scenario, not the
instrumentation), then one *instrumented* pass with ``tracemalloc``, a
:class:`~repro.observability.profiler.PhaseProfiler` and (when the
scenario exposes its kernel) a sim-time
:class:`~repro.observability.monitor.TimeSeriesMonitor` attached, which
contributes peak memory, the top-K hot spots, the per-subsystem wall-share
table, and the run's gauge timeseries. Timing aggregation is
median + MAD (median absolute deviation) — the robust pair the comparator's
noise model is built on — with raw samples kept in the artifact so a
future reader can re-derive anything.

Simulated-time metrics are required to be bit-identical across
repetitions (same process, same seed); a mismatch raises
:class:`~repro.bench.registry.BenchError` because it means the scenario is
not actually deterministic and could never be baselined.

The artifact schema (``BENCH_SCHEMA_VERSION``) is the cross-run contract:
bump it on any breaking key change, and keep
:meth:`BenchResult.as_dict` stable-keyed so artifacts diff cleanly.
"""

from __future__ import annotations

import platform
import subprocess
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..observability.monitor import TimeSeriesMonitor
from ..observability.profiler import PhaseProfiler
from .capture import PerfCapture, PerfSample
from .registry import BenchError, Scenario, ScenarioRegistry

#: Version stamp of the BENCH_*.json artifact schema.
BENCH_SCHEMA_VERSION = "repro.bench/1"

#: Hot-spot rows recorded per artifact.
DEFAULT_TOP_HOTSPOTS = 8

#: Sim-seconds between monitor samples on the instrumented pass. The
#: monitor's halving downsampler bounds the reservoir, so one fixed
#: cadence serves seconds-scale and paper-scale scenarios alike.
MONITOR_INTERVAL_SECONDS = 30.0


def machine_fingerprint() -> Dict[str, Any]:
    """Where a result was measured (wall-clock numbers are machine-bound)."""
    import os

    return {
        "cpu_count": os.cpu_count() or 0,
        "machine": platform.machine(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def git_sha(short: bool = True) -> str:
    """The repo's current commit, or ``"unknown"`` outside a checkout."""
    args = ["git", "rev-parse", "--short" if short else "HEAD"]
    if short:
        args.append("HEAD")
    try:
        out = subprocess.run(
            args, capture_output=True, text=True, timeout=10, check=False
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def median(values: List[float]) -> float:
    """Median without numpy (keeps artifacts reproducible to read)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: List[float]) -> float:
    """Median absolute deviation — the runner's robust noise estimate."""
    if len(values) < 2:
        return 0.0
    center = median(values)
    return median([abs(v - center) for v in values])


def _stat(samples: List[float]) -> Dict[str, Any]:
    return {"mad": mad(samples), "median": median(samples), "samples": samples}


@dataclass
class BenchResult:
    """One scenario's aggregated measurement, ready to serialize."""

    scenario: str
    description: str
    suite: str
    seed: int
    repetitions: int
    warmup: int
    sha: str
    machine: Dict[str, Any]
    wall_seconds: List[float] = field(default_factory=list)
    peak_memory_bytes: List[float] = field(default_factory=list)
    events_per_second: List[float] = field(default_factory=list)
    events_processed: Optional[int] = None
    simulated_metrics: Dict[str, float] = field(default_factory=dict)
    hotspots: List[Dict[str, Any]] = field(default_factory=list)
    subsystem_wall: List[Dict[str, Any]] = field(default_factory=list)
    timeseries: Optional[Dict[str, Any]] = None
    extra: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed artifact payload (the BENCH_*.json contract)."""
        payload: Dict[str, Any] = {
            "schema": BENCH_SCHEMA_VERSION,
            "scenario": self.scenario,
            "description": self.description,
            "suite": self.suite,
            "seed": self.seed,
            "repetitions": self.repetitions,
            "warmup": self.warmup,
            "git_sha": self.sha,
            "machine": self.machine,
            "events_processed": self.events_processed,
            "hotspots": self.hotspots,
            "simulated_metrics": dict(sorted(self.simulated_metrics.items())),
            "wall_seconds": _stat(self.wall_seconds),
            "peak_memory_bytes": _stat(self.peak_memory_bytes),
        }
        payload["events_per_second"] = (
            _stat(self.events_per_second) if self.events_per_second else None
        )
        # Both blocks come off the instrumented pass only; like "extra",
        # the comparator ignores them (wall shares are machine-bound and
        # the timeseries carries its own schema stamp).
        payload["subsystem_wall"] = self.subsystem_wall
        if self.timeseries is not None:
            payload["timeseries"] = self.timeseries
        if self.extra is not None:
            # Informational only: the comparator reads the perf-metric and
            # simulated_metrics keys and ignores this block entirely.
            payload["extra"] = self.extra
        return payload

    def summary(self) -> str:
        """One human line: the numbers a PR author scans first."""
        wall = median(self.wall_seconds)
        mem = median(self.peak_memory_bytes) / 1e6
        parts = [
            f"{self.scenario:<26s} wall {wall:7.3f}s ±{mad(self.wall_seconds):.3f}",
            f"peak {mem:7.1f} MB",
        ]
        if self.events_per_second:
            parts.append(f"{median(self.events_per_second):>10,.0f} ev/s")
        return "  ".join(parts)


class BenchRunner:
    """Runs registry scenarios and produces :class:`BenchResult` objects."""

    def __init__(
        self,
        registry: ScenarioRegistry,
        repetitions: Optional[int] = None,
        warmup: Optional[int] = None,
        top_hotspots: int = DEFAULT_TOP_HOTSPOTS,
    ) -> None:
        self.registry = registry
        self.repetitions = repetitions  # None -> per-scenario default
        self.warmup = warmup
        self.top_hotspots = top_hotspots
        self._sha = git_sha()
        self._machine = machine_fingerprint()

    def run_scenario(self, scenario: Scenario) -> BenchResult:
        """Warm up, time ``repetitions`` clean passes, instrument one more."""
        repetitions = self.repetitions or scenario.repetitions
        warmup = scenario.warmup if self.warmup is None else self.warmup
        for _ in range(warmup):
            scenario.build().execute()

        result = BenchResult(
            scenario=scenario.name,
            description=scenario.description,
            suite=scenario.suite,
            seed=scenario.seed,
            repetitions=repetitions,
            warmup=warmup,
            sha=self._sha,
            machine=self._machine,
        )
        # Clean timed repetitions: nothing attached that could distort
        # wall time or events/sec.
        for rep in range(repetitions):
            run = scenario.build()
            with PerfCapture(run.simulation, trace_memory=False) as capture:
                metrics = run.execute()
            sample: PerfSample = capture.sample
            result.wall_seconds.append(sample.wall_seconds)
            if sample.events_per_second is not None:
                result.events_per_second.append(sample.events_per_second)
                result.events_processed = sample.events_processed
            if rep == 0:
                result.simulated_metrics = dict(metrics)
            elif metrics != result.simulated_metrics:
                raise BenchError(
                    f"scenario {scenario.name!r} is not deterministic: "
                    f"repetition {rep} changed simulated metrics "
                    f"(seed {scenario.seed})"
                )
        # The extra block is taken from the last clean repetition so any
        # wall-clock data in it (throughput curves) stays undistorted.
        if run.extra is not None:
            result.extra = run.extra()
        # One instrumented pass: tracemalloc peak, wall-clock hot spots
        # with per-subsystem attribution, and the sim-time monitor when
        # the scenario exposes its kernel. Its (distorted) wall time is
        # deliberately not recorded, and the determinism re-check below
        # also proves the attached instruments left every simulated
        # metric untouched.
        run = scenario.build()
        profiler = PhaseProfiler()
        if run.simulation is not None:
            profiler.install(run.simulation)
        monitor: Optional[TimeSeriesMonitor] = None
        if run.kernel is not None:
            monitor = TimeSeriesMonitor(MONITOR_INTERVAL_SECONDS)
            monitor.attach(run.kernel)
        with PerfCapture(run.simulation, trace_memory=True) as capture:
            metrics = run.execute()
        if metrics != result.simulated_metrics:
            raise BenchError(
                f"scenario {scenario.name!r} is not deterministic: "
                f"instrumented pass changed simulated metrics "
                f"(seed {scenario.seed})"
            )
        result.peak_memory_bytes.append(float(capture.sample.peak_memory_bytes))
        result.hotspots = profiler.to_dict(top=self.top_hotspots)["hotspots"]
        result.subsystem_wall = profiler.subsystem_table()
        if monitor is not None and len(monitor):
            result.timeseries = monitor.as_dict()
        return result

    def run_suite(self, suite: str) -> List[BenchResult]:
        """Every scenario of ``suite``, in stable name order."""
        scenarios = self.registry.by_suite(suite)
        if not scenarios:
            raise BenchError(f"suite {suite!r} has no registered scenarios")
        return [self.run_scenario(scenario) for scenario in scenarios]

    def run_named(self, names: List[str]) -> List[BenchResult]:
        """The named scenarios, in the order given."""
        return [self.run_scenario(self.registry.get(name)) for name in names]
