"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``workload``
    Print the Section 2 workload characterization (Figures 1-2 statistics).
``simulate``
    Run the digital twin on a named profile and print the report.
``table1``
    Print the platter-set trade-off table.
``table2``
    Print the tape-vs-Silica cost comparison and the crossover year.
``durability``
    Print the coding design points (LDPC + network coding).
``archive``
    Round-trip a payload through the full put/verify/get data path.
``chaos``
    Run the digital twin under a stochastic fault schedule (MTBF/MTTR
    repair clocks, transient read errors, metadata outages) and print the
    resilience report; ``--no-repair`` runs the same schedule fail-stop;
    ``--json`` emits the full report as stable-keyed JSON.
``trace``
    Run the digital twin with the structured tracer on and export the full
    artifact set (``trace.jsonl``, ``spans.json``, ``metrics.json``,
    ``metrics.prom``, ``report.json``) plus a critical-path breakdown;
    ``--hotspots`` additionally profiles the event loop's wall-clock time.
``export``
    Run the digital twin untraced and export ``metrics.json`` /
    ``metrics.prom`` / ``report.json`` (the cheap artifact set).
``watch``
    Drive a paced run with the sim-time monitor attached and render an
    in-terminal dashboard (sparklines of queue depths, busy machines,
    fault state) frame by frame; ``--out`` additionally exports the run
    artifacts including ``timeseries.json``, ``--html FILE`` renders
    a previously exported ``timeseries.json`` (``--from-dir``) as a
    self-contained HTML timeline without re-running anything, and
    ``--follow URL`` skips the local run entirely and renders a live
    server's ``GET /events`` stream instead.
``serve``
    Run the archive as a live asyncio HTTP service over the paced twin
    (see :mod:`repro.serve`): sim time advances at ``--dilation``
    sim-seconds per wall-second, ``PUT /archive`` / ``GET /archive/{id}``
    enter the kernel through the engine's injection queue, ``--tenants``
    turns on per-tenant token-bucket admission (429 + ``Retry-After``),
    and ``GET /events`` streams tracer events as NDJSON.
``loadgen``
    Drive a live server with a seeded open- or closed-loop client fleet
    and write a schema-versioned per-request latency log; exits non-zero
    when any request errored at the transport level.
``bench``
    Continuous benchmarking (see :mod:`repro.bench`): ``bench list`` shows
    the registered scenarios, ``bench run`` executes a suite (or named
    scenarios) and writes schema-versioned ``BENCH_<scenario>.json``
    artifacts, ``bench compare`` diffs a run against the committed
    baselines with noise-aware thresholds (non-zero exit on regression or
    simulated-metric drift), and ``bench update-baseline`` promotes a
    run's artifacts to ``benchmarks/baselines/``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _tenancy_from(args: argparse.Namespace, profile):
    """The run's tenant registry (None unless ``--tenants N`` was given).

    The skewed mix's total offered rate matches the profile's rate at the
    chosen ``--rate-factor``, so a tenancy-enabled run carries the same
    aggregate load as its single-tenant twin.
    """
    tenants = getattr(args, "tenants", 0)
    fetch_policy = getattr(args, "fetch_policy", "arrival")
    if tenants <= 0:
        if fetch_policy == "deadline":
            raise SystemExit(
                "error: --fetch-policy deadline requires --tenants N (N >= 2)"
            )
        return None
    from .tenancy import skewed_mix

    return skewed_mix(
        num_tenants=max(2, tenants),
        seed=args.seed,
        total_rate_per_second=profile.mean_rate_per_second * args.rate_factor,
    )


def _profile_trace(args: argparse.Namespace):
    """Build the interval trace shared by simulate / chaos / trace / export.

    With ``--tenants N`` the trace is the multi-tenant skewed mix instead
    of the single anonymous stream; the registry is stashed on
    ``args.tenancy_registry`` for the sim-config builders.
    """
    from .workload import WorkloadGenerator, profile_by_name

    profile = profile_by_name(args.profile)
    generator = WorkloadGenerator(seed=args.seed)
    registry = _tenancy_from(args, profile)
    args.tenancy_registry = registry
    if registry is not None:
        trace, start, end = generator.multi_tenant_trace(
            registry,
            interval_hours=args.hours,
            warmup_hours=args.hours / 6,
            cooldown_hours=args.hours / 6,
            size_model=profile.size_model,
        )
        return profile, trace, start, end
    trace, start, end = generator.interval_trace(
        profile.mean_rate_per_second * args.rate_factor,
        interval_hours=args.hours,
        warmup_hours=args.hours / 6,
        cooldown_hours=args.hours / 6,
        size_model=profile.size_model,
        burstiness=profile.burstiness,
    )
    return profile, trace, start, end


def _cmd_workload(args: argparse.Namespace) -> int:
    from .workload import (
        WorkloadGenerator,
        peak_over_mean_curve,
        read_size_histogram,
        writes_over_reads,
    )

    generator = WorkloadGenerator(seed=args.seed)
    ingress = generator.ingress_series(args.days)
    reads = generator.characterization_reads(args.days)
    ratios = writes_over_reads(ingress, reads)
    histogram = read_size_histogram(reads)
    windows, pom = peak_over_mean_curve(ingress, [1, 7, 30])
    print(f"reads analyzed        : {len(reads)}")
    print(f"write/read ops ratio  : {ratios.mean_count_ratio:.0f} (paper: 174)")
    print(f"write/read byte ratio : {ratios.mean_byte_ratio:.0f} (paper: 47)")
    print(
        f"reads <= 4 MiB        : {histogram.count_percent[0]:.1f}% of ops, "
        f"{histogram.bytes_percent[0]:.2f}% of bytes"
    )
    print(f"peak/mean ingress     : {pom[0]:.1f}x @1d, {pom[2]:.2f}x @30d")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .core import LibrarySimulation, SimConfig

    profile, trace, start, end = _profile_trace(args)
    config = SimConfig(
        drive_throughput_mbps=args.mbps,
        num_drives=args.drives,
        num_shuttles=args.shuttles,
        policy=args.policy,
        num_platters=args.platters,
        unavailable_fraction=args.unavailable,
        fetch_policy=args.fetch_policy,
        tenancy=args.tenancy_registry,
        seed=args.seed,
    )
    simulation = LibrarySimulation(config)
    simulation.assign_trace(trace, start, end)
    report = simulation.run()
    print(f"profile   : {profile.name} ({len(trace)} requests)")
    print(f"policy    : {args.policy}, {args.drives} drives @ {args.mbps} MB/s, "
          f"{args.shuttles} shuttles")
    print(f"result    : {report.summary()}")
    if report.qos is not None:
        print(f"qos       : {report.qos.summary()}")
    print(
        f"tail      : {report.completions.tail_hours:.2f} h "
        f"({'within' if report.completions.within_slo() else 'MISSES'} the 15 h SLO)"
    )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .layout.platter_sets import table1

    print("  I+R   overhead   racks")
    for row in table1():
        print(
            f"{row.label:>5s}   {row.write_overhead * 100:5.1f} %   {row.storage_racks:4d}"
        )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .costs import crossover_year, table2

    for aspect, tape, silica in table2():
        print(f"{aspect:45s} tape: {tape.value}   silica: {silica.value}")
    print(f"\nlifetime-cost crossover: silica wins from year {crossover_year()}")
    return 0


def _cmd_durability(args: argparse.Namespace) -> int:
    from .ecc.durability import log10_track_decode_failure, overhead_tradeoff

    print("within-track NC at sector failure probability 1e-3:")
    for point in overhead_tradeoff(200, [8, 12, 16, 20]):
        print(
            f"  {point.overhead * 100:4.1f}% overhead -> "
            f"track failure 1e{point.log10_failure:.0f}"
        )
    design = log10_track_decode_failure()
    print(f"paper design point (~8%): 1e{design:.0f} (< 1e-24)")
    return 0


def _cmd_archive(args: argparse.Namespace) -> int:
    from .service import ArchiveService

    service = ArchiveService()
    payload = args.payload.encode()
    service.put("cli/demo", payload)
    recovered = service.get("cli/demo")
    report = service.verifier.reports[-1]
    print(f"stored {len(payload)} bytes, verified "
          f"{report.sectors_checked} sectors ({report.sectors_failed} failed)")
    print(f"read back: {recovered.decode()!r}")
    print("roundtrip OK" if recovered == payload else "ROUNDTRIP FAILED")
    return 0 if recovered == payload else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .core import LibrarySimulation, SimConfig
    from .faults import ChaosConfig, FaultModel, FaultSchedule

    profile, trace, start, end = _profile_trace(args)
    config = SimConfig(
        num_drives=args.drives,
        num_shuttles=args.shuttles,
        num_platters=args.platters,
        transient_read_error_prob=args.read_error_prob,
        fetch_policy=args.fetch_policy,
        tenancy=args.tenancy_registry,
        seed=args.seed,
    )
    simulation = LibrarySimulation(config)
    simulation.assign_trace(trace, start, end)
    horizon = (args.hours + 2 * args.hours / 6) * 3600.0

    def model(mtbf: float, mttr: float) -> "FaultModel":
        return FaultModel(mtbf_seconds=mtbf, mttr_seconds=mttr)

    chaos = ChaosConfig(
        horizon_seconds=horizon,
        shuttle=model(args.shuttle_mtbf, args.shuttle_mttr) if args.shuttle_mtbf else None,
        drive=model(args.drive_mtbf, args.drive_mttr) if args.drive_mtbf else None,
        metadata=model(args.metadata_mtbf, args.metadata_mttr) if args.metadata_mtbf else None,
        seed=args.seed,
    )
    schedule = FaultSchedule.generate(chaos, args.shuttles, args.drives)
    if args.no_repair:
        schedule = schedule.without_repair()
    simulation.apply_fault_schedule(schedule)
    from .bench import PerfCapture

    with PerfCapture(simulation.sim) as capture:
        report = simulation.run()
    perf = capture.sample
    resilience = report.resilience
    counts = {k.value: v for k, v in schedule.faults_by_component().items()}
    if args.json:
        payload = report.as_dict()
        payload["schedule"] = {
            "faults_scheduled": len(schedule),
            "faults_by_component": {k.value: v for k, v in sorted(
                schedule.faults_by_component().items(), key=lambda kv: kv[0].value
            )},
            "repair": not args.no_repair,
        }
        payload["perf"] = perf.as_dict()
        payload["service_retry"] = _sim_retry_stats(simulation).as_dict()
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    print(f"profile    : {profile.name} ({len(trace)} requests)")
    print(f"faults     : {len(schedule)} scheduled {counts} "
          f"(repair {'off' if args.no_repair else 'on'})")
    print(f"result     : {report.summary()}")
    print(f"resilience : {resilience.summary()}")
    if report.qos is not None:
        print(f"qos        : {report.qos.summary()}")
    print(f"perf       : {perf.wall_seconds:.2f}s wall, "
          f"{perf.events_per_second:,.0f} events/s, "
          f"peak {perf.peak_memory_bytes / 1e6:.1f} MB")
    print(
        f"tail       : {report.completions.tail_hours:.2f} h "
        f"({'within' if report.completions.within_slo() else 'MISSES'} the 15 h SLO)"
    )
    return 0


def _sim_retry_stats(simulation):
    """The simulator's retry ladder in the front end's stats schema.

    Maps the kernel's counters onto
    :class:`repro.service.frontend.ServiceRetryStats` so ``chaos --json``
    and the service front end expose one ``service_retry`` block shape:
    ladder climbs (re-reads / deep decodes / NC escalations), accumulated
    backoff seconds, and metadata failures (requests still parked on an
    unrepaired outage at end of run).
    """
    from .service.frontend import ServiceRetryStats

    metrics = simulation.metrics
    requests = simulation.kernel.lifecycle.all_requests
    return ServiceRetryStats(
        metadata_retries=int(metrics.value("metadata_retries_total")),
        metadata_failures=sum(
            1
            for r in requests
            if r.parent is None and r.metadata_attempts and not r.done
        ),
        sector_rereads=int(metrics.value("reread_retries_total")),
        deep_decodes=int(metrics.value("deep_decodes_total")),
        unrecovered_sectors=int(metrics.value("recovery_escalations_total")),
        backoff_seconds=metrics.value("metadata_backoff_seconds_total"),
        admission_rejections=(
            int(metrics.value("admission_rejections_total"))
            if "admission_rejections_total" in metrics
            else 0
        ),
    )


def _sim_config_from(args: argparse.Namespace):
    from .core import SimConfig

    return SimConfig(
        num_drives=args.drives,
        num_shuttles=args.shuttles,
        num_platters=args.platters,
        transient_read_error_prob=args.read_error_prob,
        fetch_policy=getattr(args, "fetch_policy", "arrival"),
        tenancy=getattr(args, "tenancy_registry", None),
        seed=args.seed,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core import LibrarySimulation
    from .observability import (
        Tracer,
        WallClockProfiler,
        critical_path,
        export_run,
    )

    profile, trace, start, end = _profile_trace(args)
    tracer = Tracer()
    simulation = LibrarySimulation(_sim_config_from(args), tracer=tracer)
    simulation.assign_trace(trace, start, end)
    profiler = None
    if args.hotspots:
        profiler = WallClockProfiler()
        profiler.install(simulation.sim)
    report = simulation.run()
    events = tracer.events()
    artifacts = export_run(
        args.out, report, simulation.metrics, events=events, profiler=profiler
    )
    from .observability import assemble_spans

    spans = assemble_spans(events)
    breakdown = critical_path(spans)
    print(f"profile   : {profile.name} ({len(trace)} requests)")
    print(f"result    : {report.summary()}")
    print(f"trace     : {len(events)} events, {len(spans)} request spans")
    print(breakdown.format())
    if profiler is not None:
        print(profiler.format(top=args.top))
    print(artifacts.summary())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .core import LibrarySimulation
    from .observability import export_run

    profile, trace, start, end = _profile_trace(args)
    simulation = LibrarySimulation(_sim_config_from(args))
    simulation.assign_trace(trace, start, end)
    report = simulation.run()
    artifacts = export_run(args.out, report, simulation.metrics)
    print(f"profile   : {profile.name} ({len(trace)} requests)")
    print(f"result    : {report.summary()}")
    print(artifacts.summary())
    return 0


def _watch_html(args: argparse.Namespace) -> int:
    """``watch --html``: render an exported timeseries as offline HTML."""
    import json

    from .observability.watch import render_html

    source = os.path.join(args.from_dir, "timeseries.json")
    if not os.path.exists(source):
        print(f"error: no timeseries.json in {args.from_dir} "
              "(run `repro watch --out DIR` or any monitor-enabled export first)",
              file=sys.stderr)
        return 2
    with open(source, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    html = render_html(payload, title=f"run timeline — {args.from_dir}")
    with open(args.html, "w", encoding="utf-8") as handle:
        handle.write(html)
    series = payload.get("series", {})
    print(f"timeline  : {args.html} ({len(series)} series, "
          f"{payload.get('samples', 0)} samples)")
    return 0


def _watch_follow(args: argparse.Namespace) -> int:
    """``watch --follow URL``: render a live server's ``/events`` stream.

    Tails the NDJSON stream and feeds every ``monitor.sample`` record —
    the kernel-gauge snapshots the server's sampler publishes — into the
    same reservoir + renderer the batch dashboard uses; one frame per
    sample. ``serve.*`` records update the headline counters between
    frames. Runs until the stream closes or ``--seconds`` elapse.
    """
    from .observability import TimeSeriesMonitor
    from .observability.watch import render_frame
    from .serve.loadgen import stream_events

    latest: dict = {}
    monitor = TimeSeriesMonitor(interval=1.0, max_samples=args.max_samples)
    monitor.set_probe(lambda: dict(latest))
    counters = {"completed": 0, "bytes_read": 0, "rejected": 0, "events": 0}
    clear = "\x1b[H\x1b[2J" if sys.stdout.isatty() else ""
    seconds = args.seconds if args.seconds > 0 else None
    horizon = 0.0
    frames = 0
    print(f"following : {args.follow} "
          f"({'until the stream ends' if seconds is None else f'{seconds:.0f}s'})")
    for record in stream_events(args.follow, seconds=seconds):
        kind = record.get("kind")
        attrs = record.get("attrs", {})
        counters["events"] += 1
        if kind == "serve.complete":
            counters["completed"] += 1
        elif kind == "serve.get":
            counters["bytes_read"] += int(attrs.get("size_bytes", 0))
        elif kind == "serve.reject":
            counters["rejected"] += 1
        elif kind == "monitor.sample":
            ts = float(record.get("ts", 0.0))
            latest.clear()
            latest.update({k: float(v) for k, v in attrs.items()})
            monitor.sample(ts)
            horizon = max(horizon, ts)
            frames += 1
            print(clear + render_frame(monitor, ts, horizon, counters))
    print(f"stream    : {counters['events']} events, {frames} sample frames")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from .core import LibrarySimulation
    from .core.events import PacedEngine
    from .observability import TimeSeriesMonitor, export_run
    from .observability.watch import render_frame

    if args.html:
        return _watch_html(args)
    if args.follow:
        return _watch_follow(args)
    profile, trace, start, end = _profile_trace(args)
    simulation = LibrarySimulation(_sim_config_from(args))
    simulation.assign_trace(trace, start, end)
    horizon = (args.hours + 2 * args.hours / 6) * 3600.0
    interval = args.interval if args.interval else horizon / 240.0
    monitor = TimeSeriesMonitor(interval, max_samples=args.max_samples)
    monitor.attach(simulation.kernel)
    frames = max(1, args.frames)
    clear = "\x1b[H\x1b[2J" if sys.stdout.isatty() and args.refresh > 0 else ""
    print(f"profile   : {profile.name} ({len(trace)} requests), "
          f"sampling every {interval:.0f}s of sim time")
    # Frame pacing rides the paced engine (dilation 0 = free-run between
    # frame boundaries, wall pause between frames) — the same clock the
    # live server couples to, so there is exactly one pacing
    # implementation in the tree.
    engine = PacedEngine(simulation.sim, frame_wall_seconds=args.refresh)
    for _frame, now in engine.frames(horizon, frames):
        counters = {
            "completed": sum(
                1 for r in simulation.all_requests if r.parent is None and r.done
            ),
            "bytes_read": simulation.bytes_read,
            "lost": simulation.requests_lost,
            "events": simulation.events_processed,
        }
        print(clear + render_frame(monitor, now, horizon, counters))
    report = simulation.run()  # drain to quiescence past the horizon
    print(f"result    : {report.summary()}")
    if args.out:
        artifacts = export_run(
            args.out, report, simulation.metrics, monitor=monitor
        )
        print(artifacts.summary())
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from .core.sim import SimConfig
    from .faults import FaultModel, FleetChaosConfig, FleetFaultSchedule
    from .fleet import FleetConfig, FleetCoordinator
    from .observability import RunArtifacts, Tracer

    profile, trace, start, end = _profile_trace(args)
    member = SimConfig(
        num_drives=args.drives,
        num_shuttles=args.shuttles,
        num_platters=args.platters,
        seed=args.seed,
    )
    config = FleetConfig(
        num_libraries=args.libraries,
        replicas=args.replicas,
        isolation=args.isolation,
        libraries_per_power_domain=args.libs_per_power,
        member=member,
        detect_timeout_seconds=args.detect_timeout,
        hedge=args.hedge,
        hedge_delay_seconds=args.hedge_delay,
        workers=args.workers,
        seed=args.seed,
    )
    tracer = Tracer() if args.out else None
    coordinator = FleetCoordinator(config, tracer=tracer)
    coordinator.assign_trace(trace, start, end)
    horizon = (args.hours + 2 * args.hours / 6) * 3600.0
    schedule = None
    if args.lib_mtbf or args.power_mtbf:
        chaos = FleetChaosConfig(
            horizon_seconds=horizon,
            library=(
                FaultModel(args.lib_mtbf, args.lib_mttr)
                if args.lib_mtbf else None
            ),
            power=(
                FaultModel(args.power_mtbf, args.power_mttr)
                if args.power_mtbf else None
            ),
            repair=not args.no_repair,
            seed=args.seed,
        )
        topology = coordinator.topology
        schedule = FleetFaultSchedule.generate(
            chaos, topology.library_domains, topology.power_domains
        )
        coordinator.apply_fault_schedule(schedule)
    report = coordinator.run()
    if args.out:
        artifacts = RunArtifacts(args.out)
        if tracer is not None:
            artifacts.write_trace(tracer.events())
        artifacts.write_metrics(coordinator.metrics)
        artifacts.write_report(report)
    if args.json:
        payload = report.as_dict()
        payload["schedule"] = {
            "outages": 0 if schedule is None else len(schedule),
            "repair": not args.no_repair,
        }
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    fleet = report.fleet
    print(f"profile   : {profile.name} ({len(trace)} requests)")
    print(
        f"fleet     : {args.libraries} libraries, k={args.replicas} "
        f"({args.isolation} isolation), "
        f"hedge {'on' if args.hedge else 'off'}, "
        f"{0 if schedule is None else len(schedule)} outage(s) scheduled"
    )
    for member_row in report.members:
        print(
            f"  {member_row.site:<8s} requests={member_row.requests:<6d} "
            f"completed={member_row.completed}"
        )
    print(f"result    : {report.summary()}")
    print(
        f"tail      : {report.completions.tail_hours:.2f} h "
        f"({'within' if report.completions.within_slo() else 'MISSES'} "
        f"the 15 h SLO)"
    )
    if args.out:
        print(artifacts.summary())
    return 0 if fleet.replication_lost == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .core import SimConfig
    from .serve import ArchiveServerCore, ServeConfig, run_server

    if args.dilation <= 0:
        print("error: serve requires --dilation > 0 (sim-seconds per "
              "wall-second)", file=sys.stderr)
        return 2
    config = ServeConfig(
        dilation=args.dilation,
        seed=args.seed,
        tenants=args.tenants,
        quota_mbps=args.quota_mbps,
        quota_burst_mb=args.quota_burst_mb,
        max_pending_ingress=args.max_pending,
        sample_interval_seconds=args.sample_interval,
        sim=SimConfig(
            num_drives=args.drives,
            num_shuttles=args.shuttles,
            num_platters=args.platters,
            seed=args.seed,
        ),
    )
    core = ArchiveServerCore(config)

    def _terminate(signum, frame):
        """Map SIGTERM onto the KeyboardInterrupt clean-shutdown path."""
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    return run_server(
        core,
        host=args.host,
        port=args.port,
        slow_client_timeout=args.slow_client_timeout,
        seconds=args.seconds,
    )


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .serve.loadgen import BurstSpec, LoadSpec, drive, parse_url

    burst = None
    if args.burst_factor > 1.0:
        burst = BurstSpec(
            start_fraction=args.burst_start,
            duration_fraction=args.burst_window,
            factor=args.burst_factor,
        )
    spec = LoadSpec(
        mode=args.mode,
        clients=args.clients,
        duration_seconds=args.seconds,
        rate_per_second=args.rate,
        think_seconds=args.think,
        object_count=args.objects,
        object_mb_mean=args.object_mb,
        tenants=tuple(args.tenant),
        burst=burst,
        seed=args.seed,
    )
    host, port = parse_url(args.url)
    summary = asyncio.run(drive(spec, host, port, args.log))
    print(json.dumps(summary, sort_keys=True, indent=2))
    return 0 if summary.get("errors", 0) == 0 else 1


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from .bench import default_registry

    registry = default_registry()
    print(f"{len(registry)} registered scenario(s):")
    for scenario in registry:
        print(
            f"  {scenario.name:<26s} [{scenario.suite:>4s}] seed={scenario.seed:<3d} "
            f"reps={scenario.repetitions} warmup={scenario.warmup}  "
            f"{scenario.description}"
        )
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from .bench import BenchRunner, default_registry
    from .observability import RunArtifacts

    registry = default_registry()
    runner = BenchRunner(
        registry,
        repetitions=args.repetitions,
        warmup=args.warmup,
        top_hotspots=args.top,
    )
    if args.scenario:
        results = runner.run_named(args.scenario)
    else:
        results = runner.run_suite(args.suite)
    artifacts = RunArtifacts(args.out)
    for result in results:
        artifacts.write_bench(result)
        print(result.summary())
        for row in (result.extra or {}).get("curve", []):
            # Sweep curves vary in their second axis: request rate for the
            # dispatch sweep, scheduler backend for the engine sweep, and
            # motion mode for the motion sweep.
            if "rate_factor" in row:
                axis = f"rate {row['rate_factor']:.2f}"
            elif "backend" in row:
                axis = f"{row['backend']:>8s}"
            else:
                axis = f"{row.get('mode', '?'):>8s}"
            print(
                f"    {int(row['num_platters']):>5d} platters x "
                f"{axis}: "
                f"{row['events_per_second']:>10,.0f} ev/s "
                f"({int(row['events_processed'])} events, "
                f"{row['wall_seconds']:.3f}s)"
            )
    print(artifacts.summary())
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .bench import Tolerance, compare_dirs

    tolerance = Tolerance(rel=args.rel_tolerance, mad_factor=args.mad_factor)
    report = compare_dirs(
        args.baseline,
        args.candidate,
        tolerance,
        names=args.scenario or None,
    )
    print(f"baseline  : {args.baseline}")
    print(f"candidate : {args.candidate}")
    print(report.format(verbose=args.verbose))
    code = report.exit_code(wall_warn_only=args.wall_warn_only)
    print("verdict   : " + ("PASS" if code == 0 else "REGRESSION"))
    return code


def _cmd_bench_update_baseline(args: argparse.Namespace) -> int:
    import shutil

    from .bench import load_artifact_dir

    docs = load_artifact_dir(args.from_dir)
    names = args.scenario or sorted(docs)
    os.makedirs(args.baseline, exist_ok=True)
    for name in names:
        if name not in docs:
            print(f"no BENCH_{name}.json in {args.from_dir}", file=sys.stderr)
            return 1
        source = os.path.join(args.from_dir, f"BENCH_{name}.json")
        target = os.path.join(args.baseline, f"BENCH_{name}.json")
        shutil.copyfile(source, target)
        print(f"baseline updated: {target}")
    return 0


def _parent(*build) -> argparse.ArgumentParser:
    """A help-less parent parser holding one shared flag group.

    ``argparse`` merges parents' arguments into each subcommand that lists
    them, so every flag shared by two or more of simulate / chaos / trace /
    export is declared exactly once (same default, same help text) instead
    of being copy-pasted per subcommand.
    """
    parent = argparse.ArgumentParser(add_help=False)
    for add in build:
        add(parent)
    return parent


def _profile_flags(p: argparse.ArgumentParser) -> None:
    """Workload-profile flags: which trace to synthesize, and how much."""
    p.add_argument("--profile", default="IOPS",
                   choices=["Typical", "IOPS", "Volume"])
    p.add_argument("--hours", type=float, default=1.0)
    p.add_argument("--rate-factor", type=float, default=0.7)


def _library_flags(p: argparse.ArgumentParser) -> None:
    """Library-plant sizing flags shared by every simulation command."""
    p.add_argument("--drives", type=int, default=20)
    p.add_argument("--shuttles", type=int, default=20)
    p.add_argument("--platters", type=int, default=1200)


def _qos_flags(p: argparse.ArgumentParser) -> None:
    """Multi-tenant QoS flags shared by simulate / chaos / trace / export."""
    p.add_argument("--tenants", type=int, default=0,
                   help="run a skewed multi-tenant mix with N tenants "
                        "(0 = single anonymous tenant)")
    p.add_argument("--fetch-policy", default="arrival",
                   choices=["arrival", "deadline"],
                   help="platter-fetch policy: §4.1 arrival order, or "
                        "deadline-aware QoS (requires --tenants)")


def _fault_flags(p: argparse.ArgumentParser) -> None:
    """Transient-fault flags shared by chaos / trace / export."""
    p.add_argument("--read-error-prob", type=float, default=0.0,
                   help="per-attempt transient sector read error probability")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Project Silica reproduction: glass archival storage.",
    )
    parser.add_argument("--seed", type=int, default=0)
    commands = parser.add_subparsers(dest="command", required=True)

    # Shared flag groups (argparse parent parsers): declared once, merged
    # into every simulation subcommand that uses them.
    run_parent = _parent(_profile_flags, _library_flags)
    qos_parent = _parent(_qos_flags)
    fault_parent = _parent(_fault_flags)

    workload = commands.add_parser("workload", help="workload characterization")
    workload.add_argument("--days", type=int, default=120)
    workload.set_defaults(func=_cmd_workload)

    simulate = commands.add_parser(
        "simulate", help="run the digital twin", parents=[run_parent, qos_parent]
    )
    simulate.add_argument("--policy", default="silica", choices=["silica", "sp", "ns"])
    simulate.add_argument("--mbps", type=float, default=60.0)
    simulate.add_argument("--unavailable", type=float, default=0.0)
    simulate.set_defaults(func=_cmd_simulate)

    commands.add_parser("table1", help="platter-set trade-off").set_defaults(
        func=_cmd_table1
    )
    commands.add_parser("table2", help="tape vs silica costs").set_defaults(
        func=_cmd_table2
    )
    commands.add_parser("durability", help="coding design points").set_defaults(
        func=_cmd_durability
    )

    archive = commands.add_parser("archive", help="put/get round trip")
    archive.add_argument("--payload", default="hello, glass")
    archive.set_defaults(func=_cmd_archive)

    chaos = commands.add_parser(
        "chaos", help="run under a stochastic fault schedule with repair clocks",
        parents=[run_parent, fault_parent, qos_parent],
    )
    chaos.add_argument("--shuttle-mtbf", type=float, default=1800.0,
                       help="shuttle MTBF seconds (0 disables shuttle faults)")
    chaos.add_argument("--shuttle-mttr", type=float, default=300.0)
    chaos.add_argument("--drive-mtbf", type=float, default=2400.0,
                       help="read-drive MTBF seconds (0 disables drive faults)")
    chaos.add_argument("--drive-mttr", type=float, default=600.0)
    chaos.add_argument("--metadata-mtbf", type=float, default=0.0,
                       help="metadata-service MTBF seconds (0 disables outages)")
    chaos.add_argument("--metadata-mttr", type=float, default=120.0)
    chaos.add_argument("--no-repair", action="store_true",
                       help="same fault schedule, repair disabled (fail-stop)")
    chaos.add_argument("--json", action="store_true",
                       help="emit the full report as stable-keyed JSON")
    chaos.set_defaults(func=_cmd_chaos)

    fleet = commands.add_parser(
        "fleet", help="replicated multi-library fleet under domain outages",
        parents=[run_parent],
    )
    fleet.add_argument("--libraries", type=int, default=3,
                       help="member libraries in the fleet")
    fleet.add_argument("--replicas", type=int, default=2,
                       help="replicas per object (k of n)")
    fleet.add_argument("--isolation", default="power",
                       choices=["library", "power"],
                       help="domain level replicas must not share")
    fleet.add_argument("--libs-per-power", type=int, default=2,
                       help="libraries sharing one rack-row power domain")
    fleet.add_argument("--workers", type=int, default=1,
                       help="process-pool size for member kernels")
    fleet.add_argument("--hedge", action="store_true",
                       help="hedge slow reads to a second replica")
    fleet.add_argument("--hedge-delay", type=float, default=600.0,
                       help="seconds before a read is hedged")
    fleet.add_argument("--detect-timeout", type=float, default=30.0,
                       help="seconds to detect an unresponsive member")
    fleet.add_argument("--lib-mtbf", type=float, default=0.0,
                       help="library MTBF seconds (0 disables library outages)")
    fleet.add_argument("--lib-mttr", type=float, default=1800.0)
    fleet.add_argument("--power-mtbf", type=float, default=0.0,
                       help="power-domain MTBF seconds (0 disables power events)")
    fleet.add_argument("--power-mttr", type=float, default=900.0)
    fleet.add_argument("--no-repair", action="store_true",
                       help="same outage schedule, repair disabled (fail-stop)")
    fleet.add_argument("--json", action="store_true",
                       help="emit the full fleet report as stable-keyed JSON")
    fleet.add_argument("--out", default=None,
                       help="artifact output directory (trace, metrics, report)")
    fleet.set_defaults(func=_cmd_fleet)

    trace = commands.add_parser(
        "trace", help="traced run: export trace.jsonl, spans, metrics, report",
        parents=[run_parent, fault_parent, qos_parent],
    )
    trace.add_argument("--out", default="runs/trace",
                       help="artifact output directory")
    trace.add_argument("--hotspots", action="store_true",
                       help="also profile the event loop's wall-clock hot spots")
    trace.add_argument("--top", type=int, default=10,
                       help="hot-spot rows to print with --hotspots")
    trace.set_defaults(func=_cmd_trace)

    export = commands.add_parser(
        "export", help="untraced run: export metrics.json/.prom and report.json",
        parents=[run_parent, fault_parent, qos_parent],
    )
    export.add_argument("--out", default="runs/export",
                        help="artifact output directory")
    export.set_defaults(func=_cmd_export)

    watch = commands.add_parser(
        "watch", help="live in-terminal dashboard of a paced run",
        parents=[run_parent, fault_parent, qos_parent],
    )
    watch.add_argument("--interval", type=float, default=0.0,
                       help="sim-seconds between monitor samples "
                            "(0 = horizon/240)")
    watch.add_argument("--frames", type=int, default=12,
                       help="dashboard frames rendered across the horizon")
    watch.add_argument("--refresh", type=float, default=0.0,
                       help="wall-seconds to pause between frames "
                            "(0 = render as fast as the run allows)")
    watch.add_argument("--max-samples", type=int, default=512,
                       help="monitor reservoir bound (halving downsampler)")
    watch.add_argument("--out", default=None,
                       help="also export run artifacts incl. timeseries.json")
    watch.add_argument("--html", default=None, metavar="FILE",
                       help="skip the run: render --from-dir's timeseries.json "
                            "as a self-contained HTML timeline at FILE")
    watch.add_argument("--from-dir", default="runs/watch",
                       help="artifact directory read by --html")
    watch.add_argument("--follow", default=None, metavar="URL",
                       help="skip the local run: render a live server's "
                            "GET /events stream (e.g. 127.0.0.1:8173/events)")
    watch.add_argument("--seconds", type=float, default=0.0,
                       help="with --follow: stop after this many wall-seconds "
                            "(0 = until the stream ends)")
    watch.set_defaults(func=_cmd_watch)

    serve = commands.add_parser(
        "serve", help="live asyncio archive server over the paced twin",
        parents=[_parent(_library_flags)],
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8173,
                       help="TCP port (0 = pick an ephemeral port)")
    serve.add_argument("--dilation", type=float, default=600.0,
                       help="sim-seconds advanced per wall-second")
    serve.add_argument("--tenants", type=int, default=0,
                       help="quota-bearing tenant mix size "
                            "(0 = single anonymous tenant, no admission)")
    serve.add_argument("--quota-mbps", type=float, default=4.0,
                       help="per-tenant token-bucket refill rate (MB/s)")
    serve.add_argument("--quota-burst-mb", type=float, default=256.0,
                       help="per-tenant token-bucket burst depth (MB)")
    serve.add_argument("--max-pending", type=int, default=256,
                       help="ingress injection-queue bound (503 threshold)")
    serve.add_argument("--sample-interval", type=float, default=300.0,
                       help="sim-seconds between monitor.sample trace events "
                            "(0 = no live gauge feed)")
    serve.add_argument("--slow-client-timeout", type=float, default=10.0,
                       help="wall-seconds a response write may stall before "
                            "the client is disconnected")
    serve.add_argument("--seconds", type=float, default=0.0,
                       help="serve for this many wall-seconds then exit "
                            "(0 = until interrupted)")
    serve.set_defaults(func=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen", help="seeded load generator against a live server"
    )
    loadgen.add_argument("--url", default="http://127.0.0.1:8173")
    loadgen.add_argument("--mode", default="closed", choices=["closed", "open"])
    loadgen.add_argument("--clients", type=int, default=8,
                         help="closed-loop client count (also the open-loop "
                              "in-flight cap)")
    loadgen.add_argument("--seconds", type=float, default=10.0,
                         help="wall-clock duration of the drive phase")
    loadgen.add_argument("--rate", type=float, default=20.0,
                         help="open-loop Poisson arrival rate (req/s)")
    loadgen.add_argument("--think", type=float, default=0.0,
                         help="closed-loop mean think time (wall-seconds)")
    loadgen.add_argument("--objects", type=int, default=32,
                         help="objects PUT during setup and read during drive")
    loadgen.add_argument("--object-mb", type=float, default=64.0,
                         help="mean object size (lognormal), MB")
    loadgen.add_argument("--tenant", action="append", default=[],
                         help="tenant name to load (repeatable; default: "
                              "discover from GET /status)")
    loadgen.add_argument("--burst-factor", type=float, default=0.0,
                         help="mid-run burst intensity multiplier "
                              "(<= 1 disables the burst window)")
    loadgen.add_argument("--burst-start", type=float, default=0.4,
                         help="burst window start (fraction of the run)")
    loadgen.add_argument("--burst-window", type=float, default=0.2,
                         help="burst window length (fraction of the run)")
    loadgen.add_argument("--log", default=None, metavar="FILE",
                         help="write the repro.loadgen/1 per-request "
                              "latency log (JSONL) here")
    loadgen.set_defaults(func=_cmd_loadgen)

    bench = commands.add_parser(
        "bench", help="continuous benchmarking: run scenarios, gate regressions"
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)

    bench_list = bench_commands.add_parser("list", help="registered scenarios")
    bench_list.set_defaults(func=_cmd_bench_list)

    bench_run = bench_commands.add_parser(
        "run", help="run a suite (or named scenarios), write BENCH_*.json"
    )
    bench_run.add_argument("--suite", default="fast", choices=["fast", "full"])
    bench_run.add_argument("--scenario", action="append", default=[],
                           help="run only this scenario (repeatable)")
    bench_run.add_argument("--out", default="runs/bench",
                           help="artifact output directory")
    bench_run.add_argument("--repetitions", type=int, default=None,
                           help="override per-scenario repetition count")
    bench_run.add_argument("--warmup", type=int, default=None,
                           help="override per-scenario warmup count")
    bench_run.add_argument("--top", type=int, default=8,
                           help="hot-spot rows recorded per artifact")
    bench_run.set_defaults(func=_cmd_bench_run)

    bench_compare = bench_commands.add_parser(
        "compare", help="diff a run against committed baselines (exit 1 on regression)"
    )
    bench_compare.add_argument("--baseline", default="benchmarks/baselines",
                               help="baseline artifact directory")
    bench_compare.add_argument("--candidate", default="runs/bench",
                               help="candidate artifact directory")
    bench_compare.add_argument("--scenario", action="append", default=[],
                               help="compare only this scenario (repeatable)")
    bench_compare.add_argument("--rel-tolerance", type=float, default=0.10,
                               help="relative wall-clock tolerance (fraction)")
    bench_compare.add_argument("--mad-factor", type=float, default=4.0,
                               help="noise threshold in MAD multiples")
    bench_compare.add_argument("--wall-warn-only", action="store_true",
                               help="wall-clock regressions warn instead of fail "
                                    "(simulated-metric drift still fails)")
    bench_compare.add_argument("--verbose", action="store_true",
                               help="print every metric row, not just flagged ones")
    bench_compare.set_defaults(func=_cmd_bench_compare)

    bench_update = bench_commands.add_parser(
        "update-baseline", help="promote a run's BENCH_*.json to the baseline dir"
    )
    bench_update.add_argument("--from-dir", default="runs/bench",
                              help="source artifact directory")
    bench_update.add_argument("--baseline", default="benchmarks/baselines",
                              help="baseline directory to update")
    bench_update.add_argument("--scenario", action="append", default=[],
                              help="promote only this scenario (repeatable)")
    bench_update.set_defaults(func=_cmd_bench_update_baseline)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from .bench.registry import BenchError

    try:
        return args.func(args)
    except BenchError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
