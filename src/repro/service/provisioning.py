"""Deployment provisioning math (Sections 3.1 and 7.2).

Two planning questions a deployment operator needs answered:

* **How many libraries (MDUs)?** "We compute the ingress rate at trace time
  and use the rate to determine the number of libraries (MDUs) to
  provision" — each MDU brings one write drive's aggregate bandwidth.

* **Does verification keep up?** Every written byte must be read back by
  the read drives before the staged copy is dropped (Section 3.1), and the
  verification workload runs in the read drives' idle time. Read bandwidth
  is provisioned for peak *user* reads, which are bursty, so the average
  idle capacity is large — :func:`verification_backlog` checks the claim
  quantitatively for a given ingress series and drive fleet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..media.read_drive import ReadDriveConfig
from ..media.write_drive import WriteDriveConfig
from ..workload.traces import IngressSeries
from .staging import provision_write_rate


@dataclass(frozen=True)
class MduPlan:
    """Libraries required for a data center's ingress."""

    libraries: int
    smoothed_rate_bytes_per_day: float
    write_bandwidth_per_library: float  # bytes/day
    utilization: float  # smoothed rate / provisioned write bandwidth


def libraries_needed(
    ingress: IngressSeries,
    write_drive: Optional[WriteDriveConfig] = None,
    max_staging_days: float = 30.0,
) -> MduPlan:
    """MDUs needed to absorb a data center's (smoothed) ingress.

    The staging tier smooths the burst; each library contributes its write
    drive's aggregate throughput. Requires at least one library.
    """
    write_drive = write_drive or WriteDriveConfig()
    smoothed = provision_write_rate(ingress, max_staging_days=max_staging_days)
    per_library = (
        write_drive.per_platter_write_mbps * write_drive.platter_slots * 1e6 * 86_400
    )
    libraries = max(1, math.ceil(smoothed / per_library))
    return MduPlan(
        libraries=libraries,
        smoothed_rate_bytes_per_day=smoothed,
        write_bandwidth_per_library=per_library,
        utilization=smoothed / (libraries * per_library),
    )


@dataclass
class VerificationPlan:
    """Verification backlog trajectory for one library fleet."""

    daily_backlog_bytes: np.ndarray
    verify_capacity_bytes_per_day: float

    @property
    def keeps_up(self) -> bool:
        """Backlog returns to ~zero instead of growing without bound."""
        if len(self.daily_backlog_bytes) < 2:
            return True
        tail = self.daily_backlog_bytes[-7:]
        return bool(tail.min() < self.verify_capacity_bytes_per_day)

    @property
    def max_backlog_days(self) -> float:
        """Worst verification lag, expressed in days of verify capacity."""
        if self.verify_capacity_bytes_per_day <= 0:
            return float("inf")
        return float(
            self.daily_backlog_bytes.max() / self.verify_capacity_bytes_per_day
        )


def verification_backlog(
    ingress: IngressSeries,
    num_read_drives: int = 20,
    read_drive: Optional[ReadDriveConfig] = None,
    customer_read_fraction: float = 0.15,
    libraries: int = 1,
) -> VerificationPlan:
    """Simulate the verification queue against idle read-drive capacity.

    ``customer_read_fraction`` is the average share of drive time consumed
    by customer reads (it is small: read bandwidth is provisioned for the
    bursty peak, Section 3.1); the rest verifies. Every written byte joins
    the verification queue the day it is written.
    """
    read_drive = read_drive or ReadDriveConfig()
    idle_fraction = max(0.0, 1.0 - customer_read_fraction)
    capacity = (
        libraries
        * num_read_drives
        * read_drive.throughput_mbps
        * 1e6
        * 86_400
        * idle_fraction
    )
    backlog = 0.0
    trajectory = np.zeros(ingress.num_days)
    for day in range(ingress.num_days):
        backlog += ingress.daily_bytes[day]
        backlog = max(0.0, backlog - capacity)
        trajectory[day] = backlog
    return VerificationPlan(trajectory, capacity)


def read_drive_headroom(
    num_read_drives: int,
    read_drive: Optional[ReadDriveConfig] = None,
    write_drive: Optional[WriteDriveConfig] = None,
) -> float:
    """Aggregate read bandwidth over aggregate write bandwidth.

    Section 3.1's design consequence: while data is being written, every
    byte is re-read for verification, so the read side needs at least 1x
    the write bandwidth *on top of* customer reads. The default MDU has
    20 x 60 MB/s = 1200 MB/s of read against 60 MB/s of write — 20x
    headroom, which is why verification hides in idle time.
    """
    read_drive = read_drive or ReadDriveConfig()
    write_drive = write_drive or WriteDriveConfig()
    read_bandwidth = num_read_drives * read_drive.throughput_mbps
    write_bandwidth = write_drive.per_platter_write_mbps * write_drive.platter_slots
    return read_bandwidth / write_bandwidth
