"""Append-only ledger on WORM glass (Section 9.1 future work).

"The Silica system is air-gap-by-design: once a platter is written it is no
longer accessible by a write drive, and read drives cannot modify the
platter, leading to a physically immutable storage medium. ... glass media
provides a natural fit for append-only data structures such as blockchains.
... the durability and immutability offered by the technology ensure and
protect the integrity of data at a physical level."

:class:`GlassLedger` is a hash-chained append-only log whose committed
segments live on sealed platters. The interesting property is *where* the
integrity comes from: tampering is impossible at the media level (WORM +
air gap), so the hash chain only needs to protect the cross-platter
ordering and the open (not yet sealed) segment — a strictly weaker job
than a software-only ledger, exactly the system-level benefit the paper
anticipates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..media.codec import SectorCodec
from ..media.geometry import PlatterGeometry, SectorAddress
from ..media.platter import Platter
from ..media.read_drive import ReadDriveModel
from ..media.write_drive import WriteDrive

GENESIS = b"\x00" * 32


@dataclass(frozen=True)
class LedgerEntry:
    """One committed record."""

    index: int
    payload: bytes
    previous_hash: bytes

    @property
    def entry_hash(self) -> bytes:
        digest = hashlib.sha256()
        digest.update(self.index.to_bytes(8, "little"))
        digest.update(self.previous_hash)
        digest.update(self.payload)
        return digest.digest()

    def to_bytes(self) -> bytes:
        blob = {
            "index": self.index,
            "payload": self.payload.hex(),
            "previous": self.previous_hash.hex(),
        }
        return json.dumps(blob, sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "LedgerEntry":
        blob = json.loads(raw.decode())
        return cls(
            index=blob["index"],
            payload=bytes.fromhex(blob["payload"]),
            previous_hash=bytes.fromhex(blob["previous"]),
        )


class LedgerIntegrityError(Exception):
    """The chain does not verify (possible only in the unsealed segment)."""


class GlassLedger:
    """A hash-chained log committed to sealed glass platters.

    Entries accumulate in an in-memory open segment; :meth:`commit_segment`
    writes the segment through the full media pipeline onto a fresh platter
    and seals it (after which the air gap makes it physically immutable).
    """

    def __init__(
        self,
        geometry: Optional[PlatterGeometry] = None,
        segment_entries: int = 16,
    ):
        self.geometry = geometry or PlatterGeometry(
            tracks=64, layers=8, voxels_per_sector=3000, sector_payload_bytes=512
        )
        self.codec = SectorCodec(payload_bytes=self.geometry.sector_payload_bytes, ldpc_rate=0.8)
        self.segment_entries = segment_entries
        self.read_drive = ReadDriveModel(seed=17)
        self._open_segment: List[LedgerEntry] = []
        self._sealed_platters: List[Platter] = []
        self._next_index = 0
        self._tip_hash = GENESIS
        self._platter_counter = 0

    # ------------------------------------------------------------------ #
    # Append path
    # ------------------------------------------------------------------ #

    @property
    def length(self) -> int:
        return self._next_index

    @property
    def tip_hash(self) -> bytes:
        return self._tip_hash

    def append(self, payload: bytes) -> LedgerEntry:
        """Add one record; auto-commits a full segment to glass."""
        if len(payload) > self.codec.payload_bytes - 128:
            raise ValueError("payload too large for a ledger sector frame")
        entry = LedgerEntry(self._next_index, payload, self._tip_hash)
        self._open_segment.append(entry)
        self._next_index += 1
        self._tip_hash = entry.entry_hash
        if len(self._open_segment) >= self.segment_entries:
            self.commit_segment()
        return entry

    def commit_segment(self) -> Optional[str]:
        """Write the open segment to a fresh platter and seal it."""
        if not self._open_segment:
            return None
        self._platter_counter += 1
        platter = Platter(f"LEDGER{self._platter_counter:04d}", self.geometry)
        write_drive = WriteDrive(codec=self.codec)
        write_drive.load_blank(platter)
        order = self.geometry.serpentine_order()
        for entry in self._open_segment:
            address = next(order)
            write_drive.write_raw_sector(platter.platter_id, address, entry.to_bytes())
        sealed = write_drive.eject(platter.platter_id)  # air gap engages here
        self._sealed_platters.append(sealed)
        self._open_segment = []
        return sealed.platter_id

    # ------------------------------------------------------------------ #
    # Read / verify path
    # ------------------------------------------------------------------ #

    def entries(self) -> Iterator[LedgerEntry]:
        """All entries, committed segments first, through the decode path."""
        for platter in self._sealed_platters:
            order = platter.geometry.serpentine_order()
            for address in order:
                symbols = platter.read_sector(address)
                if symbols is None:
                    break
                image = self.read_drive.channel.observe(symbols)
                result = self.codec.decode(
                    self.read_drive.channel.symbol_posteriors(image)
                )
                if not result.success:
                    raise LedgerIntegrityError(
                        f"unrecoverable ledger sector on {platter.platter_id}"
                    )
                payload = result.payload.rstrip(b"\x00")
                yield LedgerEntry.from_bytes(payload)
        yield from self._open_segment

    def verify_chain(self) -> bool:
        """Walk the chain; raises on any break."""
        previous = GENESIS
        expected_index = 0
        for entry in self.entries():
            if entry.index != expected_index:
                raise LedgerIntegrityError(
                    f"index gap: expected {expected_index}, found {entry.index}"
                )
            if entry.previous_hash != previous:
                raise LedgerIntegrityError(f"hash chain broken at entry {entry.index}")
            previous = entry.entry_hash
            expected_index += 1
        if previous != self._tip_hash:
            raise LedgerIntegrityError("tip hash does not match chain head")
        return True

    @property
    def committed_platters(self) -> List[str]:
        return [p.platter_id for p in self._sealed_platters]

    def physically_immutable_entries(self) -> int:
        """Entries whose integrity is media-enforced (sealed platters)."""
        return self._next_index - len(self._open_segment)
