"""Service layer: staging/smoothing, verification, and the archive API.

Implements the operational side of Sections 2, 3.1 and 6: the staging tier
that smooths bursty ingress onto mean-provisioned write drives, the
verification manager that fully reads every written platter with the read
technology before staged data is dropped, and the put/get/delete front end.
"""

from .frontend import (
    ArchiveService,
    RequestDeadlineExceeded,
    RetryPolicy,
    ServiceConfig,
    ServiceRetryStats,
    decrypt,
    encrypt,
)
from .ledger import GlassLedger, LedgerEntry, LedgerIntegrityError
from .provisioning import (
    MduPlan,
    VerificationPlan,
    libraries_needed,
    read_drive_headroom,
    verification_backlog,
)
from .staging import (
    StagingState,
    StagingTier,
    provision_write_rate,
    simulate_staging,
)
from .verification import (
    PlatterVerificationReport,
    SectorVerdict,
    VerificationManager,
)

__all__ = [
    "ArchiveService",
    "GlassLedger",
    "LedgerEntry",
    "LedgerIntegrityError",
    "MduPlan",
    "VerificationPlan",
    "libraries_needed",
    "read_drive_headroom",
    "verification_backlog",
    "RequestDeadlineExceeded",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceRetryStats",
    "decrypt",
    "encrypt",
    "StagingState",
    "StagingTier",
    "provision_write_rate",
    "simulate_staging",
    "PlatterVerificationReport",
    "SectorVerdict",
    "VerificationManager",
]
