"""Write staging and ingress smoothing (Sections 2 and 6).

"In Silica, we smooth the write load over time with relatively small volume
of staging prior to writing. This allows us to reduce costs by making the
peak only a little higher than mean, so write utilization remains high."

The staging tier is an online (warm) buffer: customer writes land here
immediately and drain to the write drives at a provisioned rate close to the
long-term mean ingress. :func:`provision_write_rate` computes the drain rate
needed to bound staging occupancy, and :class:`StagingBuffer` simulates the
buffer dynamics over a daily ingress series — reproducing the design claim
that a ~30-day smoothing window drops the required write bandwidth from
~16x mean (peak-provisioned) to ~2x mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workload.traces import IngressSeries
from ..layout.packing import StagedFile


@dataclass
class StagingState:
    """Occupancy trajectory of the staging buffer."""

    daily_occupancy: np.ndarray  # bytes staged at end of each day
    drained: np.ndarray  # bytes written to glass each day
    drain_rate: float  # provisioned bytes/day

    @property
    def peak_occupancy(self) -> float:
        return float(self.daily_occupancy.max()) if len(self.daily_occupancy) else 0.0

    @property
    def max_staging_days(self) -> float:
        """Worst-case staging residency in days (occupancy / drain rate)."""
        if self.drain_rate <= 0:
            return float("inf")
        return self.peak_occupancy / self.drain_rate

    @property
    def write_utilization(self) -> float:
        """Fraction of provisioned write bandwidth actually used."""
        if self.drain_rate <= 0 or len(self.drained) == 0:
            return 0.0
        return float(self.drained.mean() / self.drain_rate)


def simulate_staging(ingress: IngressSeries, drain_rate: float) -> StagingState:
    """Run the buffer: each day, ingress arrives and up to ``drain_rate``
    bytes are written to glass."""
    occupancy = 0.0
    occ_series = np.zeros(ingress.num_days)
    drained = np.zeros(ingress.num_days)
    for day in range(ingress.num_days):
        occupancy += ingress.daily_bytes[day]
        out = min(occupancy, drain_rate)
        occupancy -= out
        drained[day] = out
        occ_series[day] = occupancy
    return StagingState(occ_series, drained, drain_rate)


def provision_write_rate(
    ingress: IngressSeries, max_staging_days: float = 30.0, headroom: float = 1.1
) -> float:
    """Smallest drain rate (bytes/day) keeping staging residency bounded.

    Binary search over the drain rate; the result lands near the long-term
    mean ingress (peak-over-mean ~2 at 30-day windows, Figure 2), versus
    ~16x mean if the write path were provisioned for daily peaks.
    """
    mean = float(ingress.daily_bytes.mean())
    lo, hi = mean, float(ingress.daily_bytes.max())
    for _ in range(60):
        mid = (lo + hi) / 2
        state = simulate_staging(ingress, mid)
        if state.max_staging_days <= max_staging_days:
            hi = mid
        else:
            lo = mid
    return hi * headroom


@dataclass
class StagingTier:
    """Operational staging front end: holds files until packed and written.

    Files stay here through write *and verification* — "any staged write
    data is deleted" only after the platter is fully verified (Section 3.1)
    — so a verification failure can simply re-stage the file onto a
    different platter (Section 5).
    """

    capacity_bytes: float = float("inf")
    _files: Dict[str, StagedFile] = field(default_factory=dict)
    _bytes: float = 0.0

    @property
    def occupancy_bytes(self) -> float:
        return self._bytes

    @property
    def count(self) -> int:
        return len(self._files)

    def stage(self, staged: StagedFile) -> None:
        if staged.file_id in self._files:
            raise ValueError(f"file {staged.file_id} already staged")
        if self._bytes + staged.size_bytes > self.capacity_bytes:
            raise RuntimeError("staging tier full — increase drain rate")
        self._files[staged.file_id] = staged
        self._bytes += staged.size_bytes

    def peek(self, file_id: str) -> StagedFile:
        return self._files[file_id]

    def ready_files(self, min_age_seconds: float, now: float) -> List[StagedFile]:
        """Files staged at least ``min_age_seconds`` ago — the packing
        window that gives the packer its locality freedom."""
        return [
            f
            for f in self._files.values()
            if now - f.write_time >= min_age_seconds
        ]

    def release(self, file_id: str) -> StagedFile:
        """Verification succeeded: the staged copy can be dropped."""
        staged = self._files.pop(file_id)
        self._bytes -= staged.size_bytes
        return staged

    def contains(self, file_id: str) -> bool:
        return file_id in self._files
