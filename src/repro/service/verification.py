"""Data verification (Section 3.1).

"As different technologies are used to read and write, after a platter is
written it must be fully read using the same technology that will be used to
read it subsequently. This happens before a platter is stored in the library
and any staged write data is deleted. ... the verification workload simply
utilizes what would otherwise be idle read drives. ... Customer traffic is
prioritized over verification, with the read drive switching away when a
platter is mounted for a customer read."

:class:`VerificationManager` owns the queue of freshly written platters and
executes full-platter verification reads through the real decode path (LDPC
+ CRC per sector), recording per-sector recoverability and LDPC margin — the
signals Section 5 uses to declare files durably stored or send them back to
staging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..ecc.durability import durably_stored, ldpc_margin
from ..media.codec import SectorCodec
from ..media.geometry import SectorAddress, extent_addresses
from ..media.platter import Platter
from ..media.read_drive import ReadDriveModel


@dataclass
class SectorVerdict:
    """Verification outcome for one sector."""

    address: SectorAddress
    recoverable: bool
    ldpc_iterations: int
    margin: float  # available LDPC margin (>1 = headroom)


@dataclass
class PlatterVerificationReport:
    """Outcome of fully verifying one platter."""

    platter_id: str
    sectors_checked: int
    sectors_failed: int
    verdicts: List[SectorVerdict] = field(default_factory=list)
    failed_files: List[str] = field(default_factory=list)

    @property
    def sector_failure_rate(self) -> float:
        if self.sectors_checked == 0:
            return 0.0
        return self.sectors_failed / self.sectors_checked

    @property
    def passed(self) -> bool:
        """All files durably stored (failures go back to staging, §5)."""
        return not self.failed_files


class VerificationManager:
    """Queue + execution of full-platter verification."""

    def __init__(
        self,
        drive: ReadDriveModel,
        codec: SectorCodec,
        margin_safety_factor: float = 2.0,
    ):
        self.drive = drive
        self.codec = codec
        self.margin_safety_factor = margin_safety_factor
        self._queue: List[Platter] = []
        self.reports: List[PlatterVerificationReport] = []

    @property
    def pending(self) -> int:
        return len(self._queue)

    def submit(self, platter: Platter) -> None:
        """A freshly written (sealed) platter awaiting verification."""
        if not platter.sealed:
            raise ValueError(
                f"platter {platter.platter_id} must be sealed (ejected) first"
            )
        self._queue.append(platter)

    def verify_next(self) -> Optional[PlatterVerificationReport]:
        """Fully verify the next queued platter through the decode path."""
        if not self._queue:
            return None
        platter = self._queue.pop(0)
        return self.verify_platter(platter)

    def verify_platter(self, platter: Platter) -> PlatterVerificationReport:
        """Read every written sector with the *read* technology and decode.

        Correctable-but-marginal sectors count as recoverable but lower the
        margin; unrecoverable sectors mark their file for re-staging.
        """
        verdicts: List[SectorVerdict] = []
        failed_addresses: Set[Tuple[int, int]] = set()
        checked = 0
        failed = 0
        for track in platter.written_tracks():
            for layer, symbols in enumerate(platter.read_track(track)):
                if symbols is None:
                    continue
                checked += 1
                address = SectorAddress(track, layer)
                observations = self.drive.channel.observe(symbols)
                posteriors = self.drive.channel.symbol_posteriors(observations)
                result = self.codec.decode(posteriors)
                # Margin proxy: how far below the iteration budget the
                # decoder converged (fast convergence = wide margin).
                if result.success:
                    margin = ldpc_margin(
                        observed_bit_error_rate=max(result.iterations, 1) / 50.0 * 0.01,
                        correctable_bit_error_rate=0.01,
                    )
                else:
                    margin = 0.0
                recoverable = result.success and durably_stored(
                    margin, safety_factor=self.margin_safety_factor
                )
                if not recoverable:
                    failed += 1
                    failed_addresses.add((address.track, address.layer))
                verdicts.append(
                    SectorVerdict(address, recoverable, result.iterations, margin)
                )
        failed_files = self._files_touching(platter, failed_addresses)
        report = PlatterVerificationReport(
            platter_id=platter.platter_id,
            sectors_checked=checked,
            sectors_failed=failed,
            verdicts=verdicts,
            failed_files=failed_files,
        )
        self.reports.append(report)
        return report

    def _files_touching(
        self, platter: Platter, failed: Set[Tuple[int, int]]
    ) -> List[str]:
        """Files whose extents include a failed sector.

        Section 5: "If a file cannot be recovered from a platter during
        verification, it can simply be kept in staging and rewritten onto a
        different platter later" — the whole platter need not be rewritten.
        """
        if not failed:
            return []
        out = []
        for extent in platter.header.extents:
            # Walk the same serpentine order the write drive used.
            addresses = {
                (a.track, a.layer)
                for a in extent_addresses(
                    platter.geometry,
                    SectorAddress(extent.start_track, extent.start_layer),
                    extent.num_sectors,
                )
            }
            if addresses & failed:
                out.append(extent.file_id)
        return out

    def verification_seconds(self, platter_bytes: float) -> float:
        """Drive time to fully verify ``platter_bytes`` of written data."""
        return self.drive.seconds_to_scan(platter_bytes)
