"""The archival service front end: put / get / delete, end to end.

Ties the whole stack together the way Sections 3-6 describe:

* **put**: the file is encrypted (per-file key), staged, packed with its
  locality cluster, written to glass through the real pipeline (CRC + LDPC
  + voxel modulation), the platter is sealed (air gap) and fully verified
  with the read technology before the staged copy is dropped and the file
  is recorded in the metadata service;
* **get**: metadata lookup -> image the platter's sectors through the read
  channel -> decode (posterior -> LLR -> LDPC -> CRC) -> decrypt;
* **delete**: crypto-shredding — the key is destroyed; the glass is WORM
  and untouched. A platter with no live bytes can be recycled.

This is the integration surface the examples and integration tests drive.
It runs the *data* path for real; the *mechanical* path (shuttles, drives,
latencies) is the discrete event simulator's concern.
"""

from __future__ import annotations

import hashlib
import itertools
import secrets
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..layout.metadata import FileLocation, MetadataService, MetadataUnavailable
from ..layout.packing import FilePacker, PackingConfig, StagedFile
from ..media.codec import SectorCodec
from ..media.geometry import PlatterGeometry, SectorAddress, extent_addresses
from ..media.platter import Platter
from ..media.read_drive import ReadDriveModel
from ..media.write_drive import WriteDrive, WriteDriveConfig
from .staging import StagingTier
from .verification import VerificationManager


def _keystream(key: bytes, length: int) -> bytes:
    """Deterministic keystream from a 32-byte key (SHA-256 in counter mode)."""
    blocks = []
    for counter in itertools.count():
        if sum(len(b) for b in blocks) >= length:
            break
        blocks.append(hashlib.sha256(key + counter.to_bytes(8, "little")).digest())
    return b"".join(blocks)[:length]


def encrypt(key: bytes, data: bytes) -> bytes:
    """XOR stream cipher (stand-in for AES-CTR; symmetric)."""
    stream = _keystream(key, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


decrypt = encrypt  # XOR stream cipher is its own inverse


@dataclass(frozen=True)
class RetryPolicy:
    """Read-path retry escalation (Section 4/6 degraded-mode behaviour).

    Metadata lookups retry on :class:`MetadataUnavailable` with capped
    exponential backoff under a per-request deadline (the front end's twin
    of the simulator's arrival backoff). Sector decodes climb a ladder:
    re-read the sector (fresh imaging pass — transient channel noise often
    clears), then spend a deeper LDPC iteration budget, then surrender to
    cross-platter network coding (which this single-library front end
    surfaces as an IOError).
    """

    max_attempts: int = 6
    backoff_base_seconds: float = 0.5
    backoff_cap_seconds: float = 8.0
    deadline_seconds: float = 60.0
    sector_rereads: int = 1
    ldpc_iterations: int = 50
    deep_ldpc_iterations: int = 250
    # Opt-in decorrelation: with N clients retrying the same metadata
    # outage, pure exponential backoff fires every retry in lockstep (a
    # retry storm). ``jitter_fraction`` shaves a seeded-deterministic
    # uniform slice (up to that fraction) off each delay; 0.0 (default)
    # reproduces the exact legacy schedule, so committed baselines stay
    # byte-identical.
    jitter_fraction: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")

    def backoff(self, attempt: int, token: int = 0) -> float:
        """Delay before retry ``attempt`` (1-based): capped exponential.

        ``token`` distinguishes concurrent retriers (a request counter, a
        client index); with ``jitter_fraction`` enabled, different tokens
        land on decorrelated points of the backoff curve while the same
        (seed, attempt, token) triple always yields the same delay.
        """
        delay = min(
            self.backoff_base_seconds * (2.0 ** (attempt - 1)),
            self.backoff_cap_seconds,
        )
        if self.jitter_fraction > 0.0:
            digest = hashlib.sha256(
                f"{self.jitter_seed}:{attempt}:{token}".encode()
            ).digest()
            unit = int.from_bytes(digest[:8], "little") / 2**64
            delay *= 1.0 - self.jitter_fraction * unit
        return delay


class RequestDeadlineExceeded(TimeoutError):
    """A get() exhausted its retry deadline without completing."""


@dataclass
class ServiceRetryStats:
    """How often the front end climbed each rung of the retry ladder."""

    metadata_retries: int = 0
    metadata_failures: int = 0  # deadline/attempts exhausted
    sector_rereads: int = 0
    deep_decodes: int = 0
    unrecovered_sectors: int = 0
    backoff_seconds: float = 0.0
    admission_rejections: int = 0  # gets refused by tenant ingress quotas

    def as_dict(self) -> Dict[str, float]:
        """Stable-keyed snapshot (the ``service_retry`` artifact block)."""
        return {
            "admission_rejections": self.admission_rejections,
            "backoff_seconds": self.backoff_seconds,
            "deep_decodes": self.deep_decodes,
            "metadata_failures": self.metadata_failures,
            "metadata_retries": self.metadata_retries,
            "sector_rereads": self.sector_rereads,
            "unrecovered_sectors": self.unrecovered_sectors,
        }

    def publish(self, registry) -> None:
        """Mirror the ladder counters onto a metrics registry.

        ``registry`` is a :class:`repro.core.metrics.MetricsRegistry`;
        its prefix decides the metric family (``service_`` for the front
        end). Counter names follow Prometheus conventions (``_total``
        for counts, ``_seconds_total`` for accumulated time).
        """
        pairs = [
            ("metadata_retries_total", float(self.metadata_retries),
             "metadata lookups retried after a transient outage"),
            ("metadata_failures_total", float(self.metadata_failures),
             "metadata lookups that exhausted the deadline or attempts"),
            ("sector_rereads_total", float(self.sector_rereads),
             "retry-ladder rung 1: fresh imaging passes"),
            ("deep_decodes_total", float(self.deep_decodes),
             "retry-ladder rung 2: deeper LDPC iteration budgets"),
            ("unrecovered_sectors_total", float(self.unrecovered_sectors),
             "sectors the in-place ladder could not recover"),
            ("backoff_seconds_total", self.backoff_seconds,
             "simulated seconds spent waiting between retries"),
            ("admission_rejections_total", float(self.admission_rejections),
             "gets refused by tenant ingress quotas"),
        ]
        for name, value, help_text in pairs:
            registry.counter(name, help_text).inc(value)


@dataclass(frozen=True)
class ServiceConfig:
    """Front-end configuration (small-geometry defaults for fast runs)."""

    geometry: PlatterGeometry = field(
        default_factory=lambda: PlatterGeometry(
            tracks=64, layers=8, voxels_per_sector=800, sector_payload_bytes=128
        )
    )
    sector_payload_bytes: int = 128
    ldpc_rate: float = 0.8
    channel_seed: int = 11
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    # None -> per-file keys from ``secrets`` (production behaviour). A seed
    # draws keys from a seeded generator instead, making the whole data
    # path — ciphertext, channel noise, decode outcomes — reproducible
    # run to run, which benchmarks and regression baselines require.
    key_seed: Optional[int] = None
    # Multi-tenant QoS: a repro.tenancy.model.TenantRegistry enables
    # token-bucket admission control on get() (quota charged against the
    # file's stored size once metadata resolves it).
    tenancy: Optional[object] = None


class ArchiveService:
    """A single-library archival storage service.

    Pass a :class:`repro.observability.Tracer` to get structured
    ``service.*`` events (put/get lifecycle, metadata retries, decode
    ladder rungs) timestamped with the front end's simulated clock.
    Tracing defaults to off and then costs one comparison per hook.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, tracer=None):
        self.config = config or ServiceConfig()
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        cfg = self.config
        self.codec = SectorCodec(
            payload_bytes=cfg.sector_payload_bytes, ldpc_rate=cfg.ldpc_rate
        )
        self.write_drive = WriteDrive(codec=self.codec)
        self.read_drive = ReadDriveModel(seed=cfg.channel_seed)
        self.metadata = MetadataService()
        self.staging = StagingTier()
        self.verifier = VerificationManager(self.read_drive, self.codec)
        self.packer = FilePacker(
            PackingConfig(
                platter_capacity_bytes=cfg.geometry.platter_payload_bytes,
                shard_threshold_bytes=cfg.geometry.platter_payload_bytes // 2,
            )
        )
        self._platters: Dict[str, Platter] = {}
        self._platter_counter = 0
        self._clock = 0.0
        self.retry_stats = ServiceRetryStats()
        self._key_rng = (
            None if cfg.key_seed is None else np.random.default_rng(cfg.key_seed)
        )
        self.admission = None
        if cfg.tenancy is not None:
            from ..tenancy.admission import AdmissionController

            self.admission = AdmissionController(cfg.tenancy)

    # ------------------------------------------------------------------ #
    # put
    # ------------------------------------------------------------------ #

    def put(self, file_id: str, data: bytes, account: str = "default") -> FileLocation:
        """Store a file durably: stage -> write -> seal -> verify -> index.

        For simplicity of the demo path each put drains immediately to one
        platter; production batches a staging window through the packer.
        """
        self._clock += 1.0
        if self.tracer is not None:
            self.tracer.emit(
                self._clock,
                "service.put",
                component="frontend",
                file_id=file_id,
                size_bytes=len(data),
            )
        staged = StagedFile(file_id, len(data), account, self._clock)
        self.staging.stage(staged)
        record = self.metadata._files.get(file_id)
        version = len(record.versions) if record else 0
        # Key management: register the (new version of the) file so a key
        # exists, then encrypt with it.
        platter = self._new_platter()
        self.write_drive.load_blank(platter)
        key = self._ensure_key(file_id)
        ciphertext = encrypt(key, data)
        extent = self.write_drive.write_file_sectors(
            platter.platter_id, file_id, ciphertext, SectorAddress(0, 0)
        )
        sealed = self.write_drive.eject(platter.platter_id)
        # Verify with the READ technology before dropping the staged copy.
        self.verifier.submit(sealed)
        report = self.verifier.verify_next()
        if file_id in report.failed_files:
            # Keep in staging; rewrite later on different media (§5).
            raise RuntimeError(
                f"verification failed for {file_id}; file remains staged"
            )
        self.staging.release(file_id)
        location = FileLocation(
            file_id=file_id,
            version=version,
            library=0,
            platter_id=sealed.platter_id,
            start_track=extent.start_track,
            num_tracks=max(1, -(-extent.num_sectors // self.config.geometry.layers)),
            size_bytes=len(data),
        )
        self.metadata.record_write(location)
        return location

    def _ensure_key(self, file_id: str) -> bytes:
        from ..layout.metadata import _FileRecord

        record = self.metadata._files.setdefault(file_id, _FileRecord())
        if record.encryption_key is None:
            if self._key_rng is not None:
                record.encryption_key = self._key_rng.bytes(32)
            else:
                record.encryption_key = secrets.token_bytes(32)
        return record.encryption_key

    def _new_platter(self) -> Platter:
        self._platter_counter += 1
        platter = Platter(f"SRV{self._platter_counter:05d}", self.config.geometry)
        self._platters[platter.platter_id] = platter
        return platter

    # ------------------------------------------------------------------ #
    # get
    # ------------------------------------------------------------------ #

    def get(
        self, file_id: str, version: Optional[int] = None, tenant: str = ""
    ) -> bytes:
        """Read a file back through the full decode path.

        Metadata lookups retry on transient outages (capped exponential
        backoff) under the per-request deadline; sector decodes climb the
        re-read -> deeper-LDPC escalation ladder. With tenancy configured,
        the ``tenant``'s ingress quota is charged with the file's stored
        size (known once metadata resolves the location); an empty bucket
        raises :class:`repro.tenancy.admission.AdmissionRejected` before
        any glass is read.
        """
        deadline = self._clock + self.config.retry.deadline_seconds
        if self.tracer is not None:
            self.tracer.emit(
                self._clock, "service.get", component="frontend", file_id=file_id
            )
        location = self._metadata_call(
            lambda: self.metadata.locate(file_id, version), deadline
        )
        if self.admission is not None and not self.admission.admit(
            tenant, location.size_bytes, self._clock
        ):
            from ..tenancy.admission import AdmissionRejected

            self.retry_stats.admission_rejections += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self._clock,
                    "service.admission_reject",
                    component="frontend",
                    file_id=file_id,
                    tenant=tenant,
                    size_bytes=location.size_bytes,
                )
            raise AdmissionRejected(tenant, location.size_bytes)
        key = self._metadata_call(
            lambda: self.metadata.encryption_key(file_id), deadline
        )
        platter = self._platters[location.platter_id]
        extent = platter.header.locate(file_id)
        if extent is None:
            raise KeyError(f"platter header lost track of {file_id}")
        ciphertext = self._read_extent(platter, extent.start_track, extent.start_layer, extent.num_sectors)
        ciphertext = ciphertext[: extent.size_bytes]
        return decrypt(key, ciphertext)

    def _metadata_call(self, operation, deadline: float):
        """Run a metadata operation, retrying transient outages.

        Capped exponential backoff between attempts; gives up (re-raising
        :class:`MetadataUnavailable` wrapped in a deadline error) when the
        next backoff would cross the per-request deadline or the attempt
        budget is spent.
        """
        policy = self.config.retry
        attempt = 0
        while True:
            try:
                return operation()
            except MetadataUnavailable:
                attempt += 1
                # The running retry count doubles as the jitter token: each
                # successive retry (across requests) decorrelates when
                # jitter is enabled, and the token is ignored when it is
                # off, keeping the legacy schedule byte-exact.
                delay = policy.backoff(attempt, token=self.retry_stats.metadata_retries)
                if attempt >= policy.max_attempts or self._clock + delay > deadline:
                    self.retry_stats.metadata_failures += 1
                    raise RequestDeadlineExceeded(
                        f"metadata unavailable after {attempt} attempts "
                        f"({self._clock:.1f}s of {deadline:.1f}s deadline)"
                    )
                self.retry_stats.metadata_retries += 1
                self.retry_stats.backoff_seconds += delay
                self._clock += delay  # simulated wait; no wall-clock sleep
                if self.tracer is not None:
                    self.tracer.emit(
                        self._clock,
                        "service.metadata_retry",
                        component="frontend",
                        attempt=attempt,
                        backoff_s=delay,
                    )

    def _read_extent(
        self, platter: Platter, start_track: int, start_layer: int, num_sectors: int
    ) -> bytes:
        chunks: List[bytes] = []
        addresses = extent_addresses(
            platter.geometry, SectorAddress(start_track, start_layer), num_sectors
        )
        for address in addresses:
            chunks.append(self._decode_sector(platter, address))
        return b"".join(chunks)

    def _decode_sector(self, platter: Platter, address: SectorAddress) -> bytes:
        """One sector through the read-retry escalation ladder.

        Rung 0: normal imaging pass + default LDPC budget. Rung 1: re-read
        — a fresh exposure redraws the channel noise, which clears most
        transient sector errors. Rung 2: deeper LDPC iteration budget on
        the last capture. Past the ladder the sector is unrecoverable in
        place and the caller must escalate to cross-platter network coding
        (not available in this single-library front end).
        """
        policy = self.config.retry
        symbols = platter.read_sector(address)
        posteriors = None
        for reread in range(policy.sector_rereads + 1):
            observations = self.read_drive.channel.observe(symbols)
            posteriors = self.read_drive.channel.symbol_posteriors(observations)
            result = self.codec.decode(posteriors, max_iterations=policy.ldpc_iterations)
            if result.success:
                return result.payload
            if reread < policy.sector_rereads:
                self.retry_stats.sector_rereads += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        self._clock,
                        "service.sector_reread",
                        component="frontend",
                        sector=str(address),
                    )
        # Deeper iteration budget on the final capture.
        self.retry_stats.deep_decodes += 1
        if self.tracer is not None:
            self.tracer.emit(
                self._clock,
                "service.deep_decode",
                component="frontend",
                sector=str(address),
                iterations=policy.deep_ldpc_iterations,
            )
        result = self.codec.decode(
            posteriors, max_iterations=policy.deep_ldpc_iterations
        )
        if result.success:
            return result.payload
        self.retry_stats.unrecovered_sectors += 1
        if self.tracer is not None:
            self.tracer.emit(
                self._clock,
                "service.sector_unrecovered",
                component="frontend",
                sector=str(address),
            )
        raise IOError(
            f"sector {address} unrecoverable after "
            f"{policy.sector_rereads} re-read(s) and deep decode; "
            "escalate to network coding"
        )

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def metrics_registry(self):
        """Fresh ``service_``-prefixed registry holding the retry ladder.

        Snapshot semantics: counters reflect :attr:`retry_stats` at call
        time. Export with ``to_prometheus()`` / ``as_dict()`` like any
        simulator registry.
        """
        from ..core.metrics import MetricsRegistry

        registry = MetricsRegistry(prefix="service_")
        self.retry_stats.publish(registry)
        return registry

    # ------------------------------------------------------------------ #
    # delete / recycle
    # ------------------------------------------------------------------ #

    def delete(self, file_id: str) -> None:
        """Crypto-shredding delete (Section 3)."""
        self.metadata.delete(file_id)

    def recyclable_platters(self) -> List[str]:
        """Platters with no live data — candidates for melting down."""
        return [
            pid
            for pid in self._platters
            if self.metadata.live_bytes_on(pid) == 0
        ]

    def recycle(self, platter_id: str) -> Platter:
        """Melt a dead platter back into blank media."""
        if self.metadata.live_bytes_on(platter_id) > 0:
            raise RuntimeError(f"platter {platter_id} still holds live data")
        platter = self._platters.pop(platter_id)
        return platter.recycle()
