"""Discrete event simulation engine.

This is the substrate of the "digital twin" used throughout the paper's
evaluation (Section 7): a classic monotonic event-queue simulator. Time is a
float in seconds; there is no wall clock. Entities schedule callbacks and the
simulation advances by popping the earliest event.

The engine is deliberately small and deterministic:

* events with equal timestamps fire in scheduling order (a monotonically
  increasing sequence number breaks ties), so a run is fully reproducible;
* cancellation is O(1) (lazy deletion via a ``cancelled`` flag);
* ``Process`` offers a generator-based coroutine layer on top of raw events
  for entities whose behaviour reads naturally as sequential code (e.g. a
  shuttle trip: move, pick, move, place).

The pending-event set itself lives behind the :class:`SchedulerBackend`
protocol (``push``/``pop``/``peek``/``cancel``). Two implementations ship:
:class:`HeapBackend`, the binary-heap reference, and
:class:`CalendarQueueBackend`, a self-resizing calendar (bucketed) queue in
the style of Brown (1988). Both dequeue in exactly ``(time, seq)`` order —
equal timestamps always land in the same calendar bucket and every bucket
is itself a ``(time, seq)`` heap — so a run is byte-identical over either
backend (pinned by the scheduler-equivalence hypothesis suite and the
golden-replay matrix).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from time import monotonic, perf_counter
from time import sleep as _wall_sleep
from typing import (
    Any,
    Callable,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

try:  # pragma: no cover - 3.8+ always has typing.Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


class SimulationError(RuntimeError):
    """Raised on invalid use of the simulation engine (e.g. past scheduling)."""


#: Label suffixes the engine's own machinery appends when scheduling on
#: behalf of an entity: :class:`Process` completion hops and
#: :class:`Resource` grant callbacks. The phase profiler attributes any
#: label carrying one of these (plus unlabeled events) to the "engine"
#: subsystem in the wall-share table.
ENGINE_LABEL_SUFFIXES = (":grant", ":late-done")


class Event:
    """A scheduled callback.

    Events sort by ``(time, seq)``; the payload fields do not participate in
    ordering. Use :meth:`cancel` to revoke an event that has not fired yet.

    A ``__slots__`` class (not a dataclass): hundreds of thousands of these
    are queued per run, and dropping the per-instance ``__dict__`` keeps the
    event queue's memory footprint flat.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        label: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = cancelled

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, label={self.label!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        """Revoke this event. Safe to call multiple times."""
        self.cancelled = True


#: Queue entries are ``(time, seq, event)`` tuples rather than Event
#: objects so backend ordering compares plain floats/ints at C speed
#: instead of calling ``Event.__lt__`` (which dominated the event loop at
#: ~2.5M calls per fig9 run before the tuple representation).
QueueEntry = Tuple[float, int, "Event"]


class SchedulerBackend(Protocol):
    """The pending-event set behind :class:`Simulation`.

    A backend is a priority queue over :data:`QueueEntry` tuples with one
    hard contract: :meth:`pop` dequeues strictly in ``(time, seq)`` order
    — byte-identical across implementations — because the whole
    reproducibility story of the twin rests on that total order.
    Cancellation is lazy (events carry a ``cancelled`` flag); a backend
    MAY react to :meth:`cancel` eagerly but the reference implementations
    simply skip flagged entries at dequeue time and count the skips.

    Backends also keep four plain-int counters — ``pushes``, ``pops``,
    ``cancelled_skips``, ``resizes`` — published by the kernel as the
    ``sim_engine_*`` gauges. They are pure functions of the schedule/
    cancel sequence, so they are deterministic under a pinned seed.
    """

    pushes: int
    pops: int
    cancelled_skips: int
    resizes: int

    def push(self, time: float, seq: int, event: "Event") -> None:
        """Insert an entry."""
        ...  # pragma: no cover - protocol

    def pop(self) -> Optional[QueueEntry]:
        """Remove and return the earliest live entry, or None when empty."""
        ...  # pragma: no cover - protocol

    def peek(self) -> Optional[float]:
        """The earliest live entry's time without removing it, or None."""
        ...  # pragma: no cover - protocol

    def cancel(self, event: "Event") -> None:
        """Optional eager-cancellation hint (the event is already flagged)."""
        ...  # pragma: no cover - protocol

    def restore(self, entry: QueueEntry) -> None:
        """Re-insert an entry just popped (run-loop horizon backtrack)."""
        ...  # pragma: no cover - protocol

    def __len__(self) -> int:
        """Entries held, stale (cancelled-but-unskipped) ones included."""
        ...  # pragma: no cover - protocol


class HeapBackend:
    """The binary-heap reference backend (C-speed ``heapq`` on tuples)."""

    name = "heap"

    __slots__ = ("_heap", "pushes", "pops", "cancelled_skips", "resizes")

    def __init__(self) -> None:
        self._heap: List[QueueEntry] = []
        self.pushes = 0
        self.pops = 0
        self.cancelled_skips = 0
        #: Heaps never resize; the counter exists for the shared protocol.
        self.resizes = 0

    def __len__(self) -> int:
        """Entries held, stale ones included."""
        return len(self._heap)

    def push(self, time: float, seq: int, event: Event) -> None:
        """Insert an entry."""
        self.pushes += 1
        heapq.heappush(self._heap, (time, seq, event))

    def restore(self, entry: QueueEntry) -> None:
        """Re-insert a just-popped entry without counting a push."""
        heapq.heappush(self._heap, entry)

    def pop(self) -> Optional[QueueEntry]:
        """Earliest live entry (cancelled heads skipped and counted)."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = pop(heap)
            if entry[2].cancelled:
                self.cancelled_skips += 1
                continue
            self.pops += 1
            return entry
        return None

    def peek(self) -> Optional[float]:
        """Time of the earliest live entry (cancelled heads discarded)."""
        heap = self._heap
        while heap:
            if heap[0][2].cancelled:
                heapq.heappop(heap)
                self.cancelled_skips += 1
                continue
            return heap[0][0]
        return None

    def cancel(self, event: Event) -> None:
        """Lazy backend: nothing to do (the flag is checked at dequeue)."""


class CalendarQueueBackend:
    """A self-resizing calendar queue (Brown 1988) with exact tie order.

    The pending set is a ring of ``nbuckets`` buckets of width ``width``
    seconds; an entry at time ``t`` lives in bucket ``(t // width) %
    nbuckets``. Dequeue scans the ring from the last-dequeued time's
    bucket, taking the first head that falls inside the bucket's current
    "year" window — O(1) amortized when occupancy is balanced — and falls
    back to a direct min-scan when a whole year is empty.

    Two choices make the fire order *byte-identical* to the heap
    reference rather than merely time-ordered:

    * every bucket is itself a ``(time, seq)`` heap, and
    * equal timestamps always map to the same bucket,

    so the global dequeue order is exactly ``(time, seq)``. The ring
    doubles when occupancy exceeds :data:`EXPAND_FACTOR` entries per
    bucket and halves when it drops below 1/:data:`SHRINK_FACTOR`, each
    time re-deriving the width from the live span (a pure function of
    content — no clocks, no RNG — so resizing is deterministic too).
    """

    name = "calendar"

    #: Ring bounds: never fewer than MIN_BUCKETS, never more than
    #: MAX_BUCKETS (beyond which the O(1) claim stops paying for memory).
    MIN_BUCKETS = 8
    MAX_BUCKETS = 32768

    #: Mean entries per bucket that trigger a doubling.
    EXPAND_FACTOR = 2.0
    #: Inverse occupancy that triggers a halving (size < nbuckets / 4).
    SHRINK_FACTOR = 4.0

    __slots__ = (
        "_buckets",
        "_nbuckets",
        "_width",
        "_size",
        "_last_time",
        "pushes",
        "pops",
        "cancelled_skips",
        "resizes",
    )

    def __init__(self, nbuckets: int = MIN_BUCKETS, width: float = 1.0) -> None:
        self._nbuckets = max(self.MIN_BUCKETS, int(nbuckets))
        self._width = float(width)
        self._buckets: List[List[QueueEntry]] = [
            [] for _ in range(self._nbuckets)
        ]
        self._size = 0
        self._last_time = 0.0
        self.pushes = 0
        self.pops = 0
        self.cancelled_skips = 0
        self.resizes = 0

    def __len__(self) -> int:
        """Entries held, stale ones included."""
        return self._size

    def push(self, time: float, seq: int, event: Event) -> None:
        """Insert an entry into its bucket's heap, expanding if crowded."""
        self.pushes += 1
        heapq.heappush(
            self._buckets[int(time / self._width) % self._nbuckets],
            (time, seq, event),
        )
        self._size += 1
        if time < self._last_time:
            # The scan invariant is ``_last_time <= min pending time``.
            # A pop-then-restore at a run horizon advances ``_last_time``
            # to the restored (future) entry, after which the engine may
            # legally push an earlier event (sim.now is still behind the
            # horizon); rewind so the scan starts early enough to see it.
            self._last_time = time
        if (
            self._size > self.EXPAND_FACTOR * self._nbuckets
            and self._nbuckets < self.MAX_BUCKETS
        ):
            self._resize(self._nbuckets * 2)

    def restore(self, entry: QueueEntry) -> None:
        """Re-insert a just-popped entry without counting a push."""
        heapq.heappush(
            self._buckets[int(entry[0] / self._width) % self._nbuckets], entry
        )
        self._size += 1

    def pop(self) -> Optional[QueueEntry]:
        """Earliest live entry (cancelled entries skipped and counted).

        The dequeue scan is inlined rather than delegated to
        :meth:`_pop_earliest` — this method runs once per event fired, so
        a second method call per event is measurable engine overhead.
        """
        while True:
            size = self._size
            if size == 0:
                return None
            nbuckets = self._nbuckets
            width = self._width
            buckets = self._buckets
            base = int(self._last_time / width)
            index = base % nbuckets
            year_end = (base + 1) * width
            heappop = heapq.heappop
            entry: Optional[QueueEntry] = None
            for _ in range(nbuckets):
                bucket = buckets[index]
                if bucket and bucket[0][0] < year_end:
                    entry = heappop(bucket)
                    break
                index += 1
                if index == nbuckets:
                    index = 0
                year_end += width
            if entry is None:
                best_bucket = -1
                best_head: Optional[QueueEntry] = None
                for i, bucket in enumerate(buckets):
                    if bucket and (best_head is None or bucket[0] < best_head):
                        best_head = bucket[0]
                        best_bucket = i
                entry = heappop(buckets[best_bucket])
            self._size = size = size - 1
            self._last_time = entry[0]
            if nbuckets > self.MIN_BUCKETS and size * self.SHRINK_FACTOR < nbuckets:
                self._resize(nbuckets // 2)
            if entry[2].cancelled:
                self.cancelled_skips += 1
                continue
            self.pops += 1
            return entry

    def peek(self) -> Optional[float]:
        """Time of the earliest live entry (cancelled entries discarded)."""
        while True:
            entry = self._pop_earliest()
            if entry is None:
                return None
            if entry[2].cancelled:
                self.cancelled_skips += 1
                continue
            self.restore(entry)
            return entry[0]

    def cancel(self, event: Event) -> None:
        """Lazy backend: nothing to do (the flag is checked at dequeue)."""

    def _pop_earliest(self) -> Optional[QueueEntry]:
        """Remove the globally earliest entry, cancelled or not.

        The calendar scan: starting at the last-dequeued time's bucket,
        take the first bucket head inside its year window. Because the
        simulation clock is monotonic (``last_time`` never exceeds any
        pending entry), buckets visited in ring order cover strictly
        increasing time windows, so the first qualifying head is the
        global ``(time, seq)`` minimum. An empty full cycle (everything
        more than a year out) falls back to a direct min-scan.
        """
        size = self._size
        if size == 0:
            return None
        nbuckets = self._nbuckets
        width = self._width
        buckets = self._buckets
        base = int(self._last_time / width)
        index = base % nbuckets
        year_end = (base + 1) * width
        heappop = heapq.heappop
        entry: Optional[QueueEntry] = None
        for _ in range(nbuckets):
            bucket = buckets[index]
            if bucket and bucket[0][0] < year_end:
                entry = heappop(bucket)
                break
            index += 1
            if index == nbuckets:
                index = 0
            year_end += width
        if entry is None:
            best_bucket = -1
            best_head: Optional[QueueEntry] = None
            for i, bucket in enumerate(buckets):
                if bucket and (best_head is None or bucket[0] < best_head):
                    best_head = bucket[0]
                    best_bucket = i
            entry = heappop(buckets[best_bucket])
        # Removal bookkeeping, inlined (this runs once per dequeue):
        # advance the scan clock and shrink a mostly-empty ring.
        self._size = size = size - 1
        self._last_time = entry[0]
        if nbuckets > self.MIN_BUCKETS and size * self.SHRINK_FACTOR < nbuckets:
            self._resize(nbuckets // 2)
        return entry

    def _resize(self, nbuckets: int) -> None:
        """Rebuild the ring with ``nbuckets`` buckets and a re-derived width.

        The new width targets :data:`EXPAND_FACTOR`/2 entries per bucket
        over the live span of pending times — computed from queue content
        only, so a resize at the same point of two matched runs lands on
        the same geometry.
        """
        entries = [entry for bucket in self._buckets for entry in bucket]
        self.resizes += 1
        self._nbuckets = nbuckets
        if len(entries) >= 2:
            lo = min(entry[0] for entry in entries)
            hi = max(entry[0] for entry in entries)
            span = hi - lo
            if span > 0.0:
                self._width = max(span / len(entries), 1e-9)
        buckets: List[List[QueueEntry]] = [[] for _ in range(nbuckets)]
        width = self._width
        for entry in entries:
            buckets[int(entry[0] / width) % nbuckets].append(entry)
        for bucket in buckets:
            heapq.heapify(bucket)
        self._buckets = buckets


#: Backend registry behind ``SimConfig.event_scheduler`` /
#: ``Simulation(scheduler=...)``.
SCHEDULER_BACKENDS = {
    "heap": HeapBackend,
    "calendar": CalendarQueueBackend,
}


#: Backend used when neither ``Simulation(scheduler=...)`` nor
#: ``SimConfig.event_scheduler`` picks one. Both backends dequeue in the
#: same exact ``(time, seq)`` order (pinned by the equivalence suites), so
#: this is a pure wall-time choice — and measurement keeps it on the heap:
#: CPython's C-implemented ``heapq`` beats the pure-Python calendar scan
#: at every pending-set size the library reaches (see the
#: ``engine_scale_sweep`` bench curve), because the calendar's O(1)
#: amortized hop costs interpreted bytecode while the heap's O(log n)
#: sift runs in C. The calendar backend stays as the escape hatch for
#: workloads with huge pending sets and as the protocol's second,
#: equivalence-tested implementation.
DEFAULT_SCHEDULER = "heap"


class Simulation:
    """An event-queue discrete event simulator.

    Example::

        sim = Simulation()
        sim.schedule(5.0, lambda: print("five seconds in"))
        sim.run()

    ``scheduler`` names the :data:`SCHEDULER_BACKENDS` entry holding the
    pending-event set (default :data:`DEFAULT_SCHEDULER`); every backend
    fires events in identical order, so the choice affects wall time only.
    """

    def __init__(self, scheduler: Optional[str] = None) -> None:
        if scheduler is None:
            scheduler = DEFAULT_SCHEDULER
        try:
            backend_cls = SCHEDULER_BACKENDS[scheduler]
        except KeyError:
            raise SimulationError(
                f"unknown event scheduler {scheduler!r} "
                f"(choose from {sorted(SCHEDULER_BACKENDS)})"
            ) from None
        self._backend: SchedulerBackend = backend_cls()
        # Bound-method shortcut: ``schedule`` runs once per event created,
        # so the extra ``_backend.push`` attribute hop is worth skipping.
        self._push = self._backend.push
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._run_wall_seconds = 0.0
        #: Optional wall-clock observer hook ``(label, wall_seconds) -> None``
        #: (see :class:`repro.observability.profiler.WallClockProfiler`).
        #: None (the default) costs one pointer comparison per event.
        self.observer: Optional[Callable[[str, float], None]] = None
        #: Optional sim-time sampler installed by :meth:`set_sampler`:
        #: a mutable ``[next_due_time, callback]`` pair, or None (the
        #: default, costing one comparison of a loop-local per event).
        self._sampler: Optional[List[Any]] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def run_wall_seconds(self) -> float:
        """Cumulative wall-clock seconds spent inside :meth:`run`."""
        return self._run_wall_seconds

    @property
    def events_per_second(self) -> float:
        """Event-loop throughput: events fired per wall-clock second.

        Measured over time spent inside :meth:`run` (events fired through
        bare :meth:`step` calls count events but no wall time). Zero until
        the loop has run.
        """
        if self._run_wall_seconds <= 0.0:
            return 0.0
        return self._events_processed / self._run_wall_seconds

    @property
    def scheduler(self) -> str:
        """Name of the active scheduler backend (``heap``/``calendar``)."""
        return self._backend.name  # type: ignore[attr-defined]

    @property
    def pending(self) -> int:
        """Entries in the backend, stale (cancelled-unskipped) included."""
        return len(self._backend)

    @property
    def scheduler_stats(self) -> dict:
        """Engine counters from the scheduler backend.

        ``pushes``/``pops`` count live insertions and dequeues,
        ``cancelled_skips`` counts flagged entries discarded at dequeue
        time, and ``resizes`` counts calendar ring rebuilds (always zero
        for the heap). All four are deterministic under a pinned seed —
        they are published as the ``sim_engine_*`` gauges.
        """
        backend = self._backend
        return {
            "backend": backend.name,  # type: ignore[attr-defined]
            "pushes": backend.pushes,
            "pops": backend.pops,
            "cancelled_skips": backend.cancelled_skips,
            "resizes": backend.resizes,
        }

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled. ``delay`` must be
        non-negative; zero-delay events run after already-queued events at the
        same timestamp.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        event = Event(time, next(self._seq), callback, label)
        self._push(time, event.seq, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback, label)

    def set_sampler(
        self,
        interval: float,
        callback: Callable[[float], Optional[float]],
        start: Optional[float] = None,
    ) -> None:
        """Install a sim-time sampling hook on the run loop.

        ``callback(ts)`` fires at ``ts = start`` (default: now +
        ``interval``) and thereafter every interval the callback returns
        (returning None stops sampling). Samples are *not* events: they
        are interleaved by the run loop whenever the clock is about to
        jump past a due sample, so they never extend a run, never shift
        event ordering or sequence numbers, and never count toward
        ``events_processed`` — which is what keeps a sampled run's
        simulated metrics byte-identical to an unsampled one. Because
        simulation state is piecewise constant between events, the state
        a sample observes is exactly the state at its timestamp. The
        callback must not schedule events or mutate simulation state.
        Samples fire only inside :meth:`run` (bare :meth:`step` calls
        skip them).
        """
        if interval <= 0:
            raise SimulationError(f"sampler interval must be > 0 (got {interval})")
        first = self._now + interval if start is None else start
        self._sampler = [first, callback]

    def clear_sampler(self) -> None:
        """Remove the sampling hook installed by :meth:`set_sampler`."""
        self._sampler = None

    def _fire_samples(
        self, sampler: List[Any], limit: float
    ) -> Optional[List[Any]]:
        """Fire every sample due at or before ``limit``.

        Advances the clock to each sample's timestamp (monotonic: the
        caller is about to advance it to ``limit`` or beyond). Returns
        the still-armed sampler, or None once the callback stops.
        """
        while sampler[0] <= limit:
            due = sampler[0]
            if due > self._now:
                self._now = due
            next_interval = sampler[1](due)
            if next_interval is None:
                self._sampler = None
                return None
            sampler[0] = due + next_interval
        return sampler

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        return self._backend.peek()

    def step(self) -> bool:
        """Run the next event. Returns False if the queue is empty."""
        entry = self._backend.pop()
        if entry is None:
            return False
        time, _seq, event = entry
        self._now = time
        self._events_processed += 1
        if self.observer is None:
            event.callback()
        else:
            start = perf_counter()
            event.callback()
            self.observer(event.label, perf_counter() - start)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the queue drains earlier, so utilization denominators are
        well defined.
        """
        if self._running:
            raise SimulationError("simulation is already running (re-entrant run())")
        self._running = True
        processed = 0
        loop_start = perf_counter()
        # The loop body is inlined (rather than peek()+step()) and binds the
        # backend's pop locally: this loop fires every event in a run, so
        # per-event attribute lookups are the engine's own overhead floor.
        # The ``until`` horizon is enforced by pop-then-restore — one extra
        # backend call per run() instead of a peek per event.
        backend = self._backend
        pop = backend.pop
        sampler = self._sampler
        observer = self.observer
        try:
            if max_events is None and observer is None:
                # The common shape (bench clean reps, full twin runs):
                # no event cap, no per-event timing. Dropping those two
                # checks and the tuple unpack from the loop is worth a few
                # percent of total run time at fig9 scale.
                while True:
                    entry = pop()
                    if entry is None:
                        break
                    time = entry[0]
                    if until is not None and time > until:
                        backend.restore(entry)
                        break
                    if sampler is not None and sampler[0] <= time:
                        sampler = self._fire_samples(sampler, time)
                    self._now = time
                    processed += 1
                    entry[2].callback()
            else:
                while True:
                    if max_events is not None and processed >= max_events:
                        break
                    entry = pop()
                    if entry is None:
                        break
                    if until is not None and entry[0] > until:
                        backend.restore(entry)
                        break
                    time, _seq, event = entry
                    if sampler is not None and sampler[0] <= time:
                        sampler = self._fire_samples(sampler, time)
                    self._now = time
                    processed += 1
                    if observer is None:
                        event.callback()
                    else:
                        start = perf_counter()
                        event.callback()
                        observer(event.label, perf_counter() - start)
        finally:
            self._running = False
            self._events_processed += processed
            self._run_wall_seconds += perf_counter() - loop_start
        if until is not None and self._now < until:
            # Close out samples due in the drained tail before pinning the
            # clock to the horizon (state is constant there, so each one
            # still observes the correct snapshot).
            if sampler is not None:
                self._fire_samples(sampler, until)
            self._now = until

    def process(self, generator: Generator[float, None, None], label: str = "") -> "Process":
        """Start a coroutine-style process (see :class:`Process`)."""
        return Process(self, generator, label)


class Process:
    """Generator-driven sequential activity on top of the event queue.

    The generator yields delays (seconds); the process resumes after each
    delay. A process finishes when the generator returns. ``on_done``
    callbacks fire at completion time::

        def trip(sim):
            yield 2.0   # travel
            yield 0.6   # pick
            yield 2.0   # travel back

        Process(sim, trip(sim)).on_done(lambda: print("done"))
    """

    def __init__(self, sim: Simulation, generator: Generator[float, None, None], label: str = "") -> None:
        self.sim = sim
        self.label = label
        self._generator = generator
        self._done = False
        self._done_callbacks: List[Callable[[], None]] = []
        self._pending: Optional[Event] = None
        self._cancelled = False
        # Kick off on the next zero-delay tick so construction never runs
        # user code synchronously.
        self._pending = sim.schedule(0.0, self._advance, label=label)

    @property
    def done(self) -> bool:
        """True once the generator has finished (or the process was cancelled)."""
        return self._done

    def on_done(self, callback: Callable[[], None]) -> "Process":
        """Register ``callback`` to run when the process completes.

        If the process already completed, the callback fires on the next tick.
        """
        if self._done:
            self.sim.schedule(0.0, callback, label=f"{self.label}:late-done")
        else:
            self._done_callbacks.append(callback)
        return self

    def cancel(self) -> None:
        """Stop the process; no further steps or done-callbacks run."""
        self._cancelled = True
        if self._pending is not None:
            self._pending.cancel()
        self._done = True

    def _advance(self) -> None:
        """Resume the generator once, scheduling the next step or finishing."""
        if self._cancelled:
            return
        try:
            delay = next(self._generator)
        except StopIteration:
            self._done = True
            self._pending = None
            for callback in self._done_callbacks:
                callback()
            return
        self._pending = self.sim.schedule(float(delay), self._advance, label=self.label)


class PacedEngine:
    """Couples a :class:`Simulation` to the wall clock, with safe ingress.

    The batch engine runs as fast as it can; a *paced* engine instead maps
    wall time onto sim time through a ``dilation`` factor (sim-seconds per
    wall-second) so the twin advances in real time — the substrate of the
    live service mode (``repro.serve``) and of ``python -m repro watch``'s
    frame pacing. Two ideas keep it deterministic enough to serve traffic:

    * All simulation state is touched by exactly one thread (whichever
      thread calls :meth:`advance_to` / :meth:`serve` — "the engine
      thread"). Other threads hand work in through :meth:`inject`, a
      thread-safe FIFO of callbacks.
    * Injections are drained only at slice boundaries, on the engine
      thread, and each callback runs at the *current* sim time. Once a
      request has been injected at sim time ``t``, everything downstream
      of it is the ordinary deterministic kernel — wall-clock jitter only
      moves the admission timestamp, never the event interleaving after
      it.

    ``dilation <= 0`` means *free run*: :meth:`advance_to` does not sleep
    at all and is byte-equivalent to ``sim.run(until=...)`` (this is what
    the watch command uses between frames, so ``watch --html`` output is
    unchanged by the rebuild). ``clock``/``sleep`` are injectable for
    tests.
    """

    def __init__(
        self,
        sim: Simulation,
        dilation: float = 0.0,
        poll_wall_seconds: float = 0.05,
        frame_wall_seconds: float = 0.0,
        max_pending: int = 0,
        clock: Callable[[], float] = monotonic,
        sleep: Callable[[float], None] = _wall_sleep,
    ) -> None:
        self.sim = sim
        self.dilation = float(dilation)
        #: Upper bound on how long the engine thread sleeps before
        #: re-checking stop flags and the wall clock (seconds).
        self.poll_wall_seconds = float(poll_wall_seconds)
        #: Wall pause between :meth:`frames` slices (the watch refresh).
        self.frame_wall_seconds = float(frame_wall_seconds)
        #: Injection backpressure bound; 0 disables (see :meth:`inject`).
        self.max_pending = int(max_pending)
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: deque = deque()
        self._injected_total = 0
        self._drained_total = 0
        self._refused_total = 0
        self._origin: Optional[Tuple[float, float]] = None

    @property
    def pending_injections(self) -> int:
        """Callbacks injected but not yet drained onto the engine thread."""
        with self._lock:
            return len(self._pending)

    @property
    def injection_stats(self) -> Tuple[int, int, int]:
        """``(injected, drained, refused)`` lifetime counters."""
        with self._lock:
            return (self._injected_total, self._drained_total, self._refused_total)

    def inject(self, callback: Callable[[], None]) -> bool:
        """Hand ``callback`` to the engine thread; safe from any thread.

        The callback runs at the next slice boundary, at the engine's
        current sim time, in FIFO order with other injections. Returns
        False (and counts a refusal) when ``max_pending`` is set and the
        queue is full — the caller's backpressure signal.
        """
        with self._wake:
            if self.max_pending > 0 and len(self._pending) >= self.max_pending:
                self._refused_total += 1
                return False
            self._pending.append(callback)
            self._injected_total += 1
            self._wake.notify_all()
        return True

    def drain_injections(self) -> int:
        """Run all pending injected callbacks; engine thread only."""
        ran = 0
        while True:
            with self._lock:
                if not self._pending:
                    return ran
                callback = self._pending.popleft()
                self._drained_total += 1
            callback()
            ran += 1

    def _wall_due(self) -> float:
        """Sim time the wall clock says we should have reached by now."""
        wall0, sim0 = self._origin  # type: ignore[misc]
        return sim0 + (self._clock() - wall0) * self.dilation

    def _wait_wall(self, seconds: float) -> None:
        """Idle until ``seconds`` pass, an injection arrives, or poll cap."""
        timeout = min(seconds, self.poll_wall_seconds)
        if timeout <= 0:
            return
        with self._wake:
            if not self._pending:
                self._wake.wait(timeout)

    def advance_to(self, sim_target: float) -> None:
        """Advance the sim clock to ``sim_target``, pacing by ``dilation``.

        Free-run mode (``dilation <= 0``) drains injections once and runs
        the queue straight to the target. Paced mode interleaves slices of
        ``sim.run`` with wall-clock sleeps so sim time never runs ahead of
        ``origin + elapsed * dilation``, draining injections at every
        slice boundary.
        """
        if self.dilation <= 0:
            self.drain_injections()
            self.sim.run(until=sim_target)
            return
        if self._origin is None:
            self._origin = (self._clock(), self.sim.now)
        while True:
            self.drain_injections()
            due = self._wall_due()
            self.sim.run(until=min(due, sim_target))
            if self.sim.now >= sim_target:
                return
            # Sleep toward whichever comes first: the next event, or the
            # target itself; injections cut the wait short via the
            # condition, the poll cap bounds it either way.
            horizon = sim_target
            next_event = self.sim.peek()
            if next_event is not None:
                horizon = min(horizon, next_event)
            self._wait_wall(max(0.0, (horizon - due) / self.dilation))

    def serve(self, stop: threading.Event, horizon: Optional[float] = None) -> None:
        """Run paced until ``stop`` is set (or sim time reaches ``horizon``).

        The open-ended loop behind a live server: keeps the sim clock
        tracking the wall clock and keeps draining injected requests.
        Requires ``dilation > 0`` — an unpaced server would spin sim time
        to infinity.
        """
        if self.dilation <= 0:
            raise SimulationError("serve() requires dilation > 0 (paced mode)")
        if self._origin is None:
            self._origin = (self._clock(), self.sim.now)
        while not stop.is_set():
            self.drain_injections()
            due = self._wall_due()
            if horizon is not None:
                due = min(due, horizon)
            self.sim.run(until=due)
            if horizon is not None and self.sim.now >= horizon:
                return
            next_event = self.sim.peek()
            if next_event is None:
                self._wait_wall(self.poll_wall_seconds)
            else:
                self._wait_wall(max(0.0, (next_event - due) / self.dilation))
        self.drain_injections()

    def frames(
        self, horizon: float, count: int
    ) -> Generator[Tuple[int, float], None, None]:
        """Advance to ``horizon`` in ``count`` slices, yielding after each.

        Yields ``(frame_index, sim_now)`` with ``frame_index`` counting
        from 1. Between frames the engine pauses ``frame_wall_seconds``
        of wall time — this is the single pacing implementation behind
        ``python -m repro watch`` (free-run within a frame, wall pause
        between frames), and it also composes with ``dilation`` for a
        continuously paced frame stream.
        """
        if count < 1:
            raise SimulationError(f"frames() needs count >= 1 (got {count})")
        for frame in range(1, count + 1):
            if frame > 1 and self.frame_wall_seconds > 0:
                self._sleep(self.frame_wall_seconds)
            self.advance_to(horizon * frame / count)
            yield frame, self.sim.now


def drain(sim: Simulation, limit: int = 10_000_000) -> int:
    """Run ``sim`` until its queue is empty; return events processed.

    ``limit`` guards against accidental infinite event loops in tests.
    """
    count = 0
    while sim.step():
        count += 1
        if count >= limit:
            raise SimulationError(f"simulation did not drain within {limit} events")
    return count


class Resource:
    """A counted resource with FIFO waiters (e.g. drive slots).

    ``acquire(callback)`` runs the callback immediately (via a zero-delay
    event) if capacity is available, otherwise queues it. ``release()`` hands
    the slot to the next waiter.
    """

    def __init__(self, sim: Simulation, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: List[Callable[[], None]] = []

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Slots free to grant right now."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Callbacks waiting for a slot."""
        return len(self._waiters)

    def acquire(self, callback: Callable[[], None]) -> None:
        """Grant a slot to ``callback`` now (zero-delay event) or enqueue it."""
        if self._in_use < self.capacity:
            self._in_use += 1
            self.sim.schedule(0.0, callback, label=f"{self.name}:grant")
        else:
            self._waiters.append(callback)

    def release(self) -> None:
        """Free a slot, handing it to the next FIFO waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._waiters:
            callback = self._waiters.pop(0)
            self.sim.schedule(0.0, callback, label=f"{self.name}:grant")
        else:
            self._in_use -= 1
