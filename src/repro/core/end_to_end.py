"""End-to-end latency: library completion plus disaggregated decode.

Section 7.2: "The completion time does not include the disaggregated
decode, however, decode requests can be submitted with high priority to the
ML stack for reads that complete close to the SLO."

This module composes the two: every completed library read becomes a decode
job in the elastic ML cluster; its SLO budget is whatever remains of the
15-hour SLO after the library's completion time (reads that finished close
to the SLO get tight budgets — i.e. high priority — exactly as the paper
describes). The result is the true last-byte-decoded distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..decode.pipeline import ClusterConfig, DecodeCluster, DecodeJob, diurnal_price_curve
from .metrics import SLO_SECONDS, CompletionStats
from .sim import LibrarySimulation


@dataclass
class EndToEndReport:
    """Library + decode latency composition."""

    library_completions: CompletionStats
    end_to_end: CompletionStats
    decode_cost: float
    decode_slo_violations: int

    @property
    def decode_overhead_at_tail(self) -> float:
        """Extra tail seconds the decode stage added."""
        return self.end_to_end.tail - self.library_completions.tail


def compose_with_decode(
    simulation: LibrarySimulation,
    sectors_per_track: float = 200.0,
    cluster_config: Optional[ClusterConfig] = None,
    slo_seconds: float = SLO_SECONDS,
    price_amplitude: float = 0.5,
    defer: bool = True,
) -> EndToEndReport:
    """Feed a finished simulation's reads through the decode scheduler.

    Each completed top-level request becomes one decode job whose work is
    its track count times ``sectors_per_track`` sector-decodes, arriving at
    the library completion instant with the *remaining* SLO (minus one
    scheduling quantum of safety margin) as its budget. With ``defer``
    False the cluster decodes on arrival instead of time-shifting to cheap
    hours — higher cost, lower latency (the trade-off of Section 3.2).
    """
    completed = list(simulation.kernel.measured_completed())
    if not completed:
        raise ValueError("simulation has no measured completed requests")
    horizon_hours = int(math.ceil(simulation.sim.now / 3600.0)) + int(
        slo_seconds // 3600
    ) + 1
    cluster = DecodeCluster(
        diurnal_price_curve(horizon_hours, amplitude=price_amplitude),
        cluster_config,
    )
    end_to_end_times: List[float] = []
    library_times: List[float] = []
    for request in sorted(completed, key=lambda r: r.completion):
        library_latency = request.completion_time
        # Reserve one scheduling quantum: decode completes at the end of
        # its hour, so the budget must leave room for that rounding.
        remaining_slo = max(0.001, (slo_seconds - library_latency) / 3600.0 - 1.0)
        if not defer:
            remaining_slo = 0.001  # force decode-on-arrival
        job = DecodeJob(
            job_id=request.request_id,
            arrival_hour=request.completion / 3600.0,
            work_units=max(1.0, request.num_tracks * sectors_per_track),
            slo_hours=remaining_slo,
        )
        placed = cluster.schedule(job)
        # Decode finishes by the end of its scheduled hour.
        decoded_at = (placed.start_hour + 1) * 3600.0
        decoded_at = max(decoded_at, request.completion)
        end_to_end_times.append(decoded_at - request.arrival)
        library_times.append(library_latency)
    return EndToEndReport(
        library_completions=CompletionStats.from_times(library_times),
        end_to_end=CompletionStats.from_times(end_to_end_times),
        decode_cost=cluster.total_cost(),
        decode_slo_violations=cluster.slo_violations(),
    )
