"""The library request scheduler (Section 4.1).

"The scheduler maintains a queue ordered on request arrival time and
maintains a separate structure that groups all requests for the same
platter. By default, once a platter is inserted into a read drive all the
requests for that platter are serviced since the fetch time dominates. ...
Platter fetch selection is based on work-conserving fairness. The platter
selected has the earliest queued read among the platters that are
accessible."
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from .requests import SimRequest


class RequestScheduler:
    """Arrival-ordered queue with per-platter grouping.

    ``select_platter`` implements work-conserving fairness: among platters
    that are accessible (per the caller's predicate — e.g. within a
    shuttle's partition, not obscured, not already being fetched), pick the
    one whose earliest queued request is oldest.
    """

    def __init__(self, amortize_batch: bool = True):
        #: platter id -> queued requests (arrival order).
        self._by_platter: Dict[str, List[SimRequest]] = {}
        #: platter id -> earliest queued arrival, as a heap for fast scans.
        self._earliest: Dict[str, float] = {}
        #: platters currently assigned to a fetch or mounted in a drive.
        self._in_service: Set[str] = set()
        self.amortize_batch = amortize_batch
        self.total_enqueued = 0

    # ------------------------------------------------------------------ #
    # Queue maintenance
    # ------------------------------------------------------------------ #

    def enqueue(self, request: SimRequest) -> bool:
        """Add a request; returns True if its platter was not pending before.

        The transition empty -> pending is what callers use to maintain
        their fetch-candidate indexes (heaps) incrementally.
        """
        queue = self._by_platter.setdefault(request.platter_id, [])
        newly_pending = not queue
        queue.append(request)
        first = self._earliest.get(request.platter_id)
        if first is None or request.arrival < first:
            self._earliest[request.platter_id] = request.arrival
        self.total_enqueued += 1
        return newly_pending

    def earliest_for(self, platter_id: str) -> Optional[float]:
        """Earliest queued arrival for a platter, or None if not pending."""
        return self._earliest.get(platter_id)

    @property
    def pending_requests(self) -> int:
        return sum(len(q) for q in self._by_platter.values())

    @property
    def pending_platters(self) -> int:
        return len(self._by_platter)

    def pending_bytes_by_platter(self) -> Dict[str, int]:
        return {
            platter: sum(r.size_bytes for r in queue)
            for platter, queue in self._by_platter.items()
        }

    def has_work(self, platter_id: str) -> bool:
        return platter_id in self._by_platter

    def queued_for(self, platter_id: str) -> List[SimRequest]:
        return list(self._by_platter.get(platter_id, []))

    # ------------------------------------------------------------------ #
    # Fetch selection
    # ------------------------------------------------------------------ #

    def select_platter(
        self, accessible: Callable[[str], bool]
    ) -> Optional[str]:
        """Earliest-queued-read platter among accessible, unassigned ones.

        Work conservation: a platter whose earliest request is oldest but
        which is currently inaccessible (obscured / being fetched) is
        skipped; it will be selected as soon as its resources free up.
        """
        best: Optional[str] = None
        best_arrival = float("inf")
        for platter, earliest in self._earliest.items():
            if earliest >= best_arrival:
                continue
            if platter in self._in_service:
                continue
            if not accessible(platter):
                continue
            best = platter
            best_arrival = earliest
        return best

    def begin_service(self, platter_id: str) -> None:
        """Mark the platter assigned (fetch dispatched)."""
        if platter_id in self._in_service:
            raise ValueError(f"platter {platter_id} already in service")
        self._in_service.add(platter_id)

    def take_batch(self, platter_id: str) -> List[SimRequest]:
        """All queued requests for a mounted platter (fetch amortization).

        With ``amortize_batch`` False, only the earliest request is taken
        (ablation of the paper's default policy).
        """
        queue = self._by_platter.get(platter_id, [])
        if not queue:
            return []
        if self.amortize_batch:
            batch = queue
            del self._by_platter[platter_id]
            del self._earliest[platter_id]
        else:
            batch = [queue.pop(0)]
            if queue:
                self._earliest[platter_id] = queue[0].arrival
            else:
                del self._by_platter[platter_id]
                del self._earliest[platter_id]
        return batch

    def end_service(self, platter_id: str) -> None:
        """Platter returned to its shelf; it may be selected again."""
        self._in_service.discard(platter_id)

    def remove_pending(self, platter_id: str) -> List[SimRequest]:
        """Withdraw and return a platter's queued requests.

        Used when a platter becomes unavailable (failure blast zone): its
        queue is re-routed through cross-platter recovery. Refuses platters
        currently in service (they are mounted, hence accessible).
        """
        if platter_id in self._in_service:
            raise ValueError(f"platter {platter_id} is in service")
        queue = self._by_platter.pop(platter_id, [])
        self._earliest.pop(platter_id, None)
        return queue

    def in_service(self, platter_id: str) -> bool:
        return platter_id in self._in_service
