"""The library request scheduler (Section 4.1).

"The scheduler maintains a queue ordered on request arrival time and
maintains a separate structure that groups all requests for the same
platter. By default, once a platter is inserted into a read drive all the
requests for that platter are serviced since the fetch time dominates. ...
Platter fetch selection is based on work-conserving fairness. The platter
selected has the earliest queued read among the platters that are
accessible."
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set, Tuple

from .requests import SimRequest

# --------------------------------------------------------------------- #
# Shared lazy-heap utilities
#
# Both the scheduler's platter selection and the dispatch subsystem's
# fetch-candidate indexes use the same pattern: a min-heap of
# ``(priority, id)`` whose entries are never removed eagerly — stale or
# invalid entries are discarded when they surface at the heap head. The
# two helpers below are the shared implementation of that pattern.
# --------------------------------------------------------------------- #


def pop_min_valid(
    heap: List[Tuple[float, str]], valid: Callable[[str], bool]
) -> Optional[str]:
    """Pop and return the smallest-key id satisfying ``valid``.

    Entries failing ``valid`` are stale (their platter was serviced,
    withdrawn, or is otherwise ineligible forever under this index's
    contract) and are discarded permanently. Returns None when the heap
    runs dry.
    """
    while heap:
        ident = heap[0][1]
        heapq.heappop(heap)
        if valid(ident):
            return ident
    return None


def select_min_eligible(
    heap: List[Tuple[float, str]],
    is_current: Callable[[str, float], bool],
    eligible: Callable[[str], bool],
) -> Optional[str]:
    """Smallest-key id that is current *and* eligible, without consuming it.

    Entries failing ``is_current`` are stale duplicates (the id was
    re-pushed at a better key) and are discarded. Current entries are
    popped, tested against ``eligible``, and pushed back afterwards —
    whether skipped or chosen — so the call is side-effect-free for the
    caller: ineligibility here is transient (e.g. a platter mid-fetch),
    unlike the permanent invalidation of :func:`pop_min_valid`.
    """
    restore: List[Tuple[float, str]] = []
    chosen: Optional[str] = None
    while heap:
        entry = heapq.heappop(heap)
        key, ident = entry
        if not is_current(ident, key):
            continue
        restore.append(entry)
        if not eligible(ident):
            continue
        chosen = ident
        break
    for entry in restore:
        heapq.heappush(heap, entry)
    return chosen


class ArrivalOrderPolicy:
    """The §4.1 default fetch policy: earliest queued arrival wins.

    A fetch policy maps a request to a static priority key (smaller is
    more urgent); the scheduler fetches the platter whose queued-request
    key minimum is smallest. The arrival-time key reproduces the paper's
    work-conserving FIFO. :class:`repro.tenancy.qos.
    DeadlineAwareFetchPolicy` substitutes a weighted-deadline key.
    """

    name = "arrival"
    #: Arrivals reach the simulator in time order, so an already-pending
    #: platter's key can only improve on out-of-order re-enqueues (retry /
    #: recovery traffic). §4.1 dispatch publishes a platter's candidacy
    #: once per pending episode and leaves that entry in place; keep that
    #: contract so matched-seed runs replay byte-identically.
    refresh_on_improvement = False

    def key(self, request: SimRequest) -> float:
        """Priority key for one request — its arrival time."""
        return request.arrival


class RequestScheduler:
    """Arrival-ordered queue with per-platter grouping.

    ``select_platter`` implements work-conserving fairness: among platters
    that are accessible (per the caller's predicate — e.g. within a
    shuttle's partition, not obscured, not already being fetched), pick the
    one whose earliest queued request is oldest — or, under an injected
    ``policy``, whose most-urgent queued request has the smallest priority
    key. Ties break on platter id so matched-seed runs are byte-identical.
    """

    def __init__(self, amortize_batch: bool = True, policy=None):
        #: platter id -> queued requests (arrival order).
        self._by_platter: Dict[str, List[SimRequest]] = {}
        #: platter id -> earliest queued arrival, kept for SLO accounting
        #: and partition routing regardless of the active policy.
        self._earliest: Dict[str, float] = {}
        #: platter id -> smallest policy key among its queued requests.
        self._priority: Dict[str, float] = {}
        #: min-heap of (priority, platter id); entries whose priority no
        #: longer matches ``_priority`` are stale and dropped lazily.
        self._select_heap: List[Tuple[float, str]] = []
        #: platters currently assigned to a fetch or mounted in a drive.
        self._in_service: Set[str] = set()
        self.amortize_batch = amortize_batch
        self.policy = policy if policy is not None else ArrivalOrderPolicy()
        self.total_enqueued = 0

    # ------------------------------------------------------------------ #
    # Queue maintenance
    # ------------------------------------------------------------------ #

    def enqueue(self, request: SimRequest) -> bool:
        """Add a request; returns True when the platter's fetch candidacy
        should be (re)published.

        Always True on the empty -> pending transition — that is how
        callers maintain their candidate indexes incrementally. A priority
        improvement on an *already-pending* platter additionally returns
        True only when the policy opts in via ``refresh_on_improvement``:
        deadline policies must (an urgent class arriving behind a patient
        one reorders the fetch), while the arrival-order default declines
        so out-of-order re-enqueues (retry / recovery traffic) replay the
        historical §4.1 dispatch order. The scheduler's own selection heap
        is refreshed on every improvement regardless, so
        :meth:`select_platter` always sees true priorities.
        """
        queue = self._by_platter.setdefault(request.platter_id, [])
        queue.append(request)
        first = self._earliest.get(request.platter_id)
        if first is None or request.arrival < first:
            self._earliest[request.platter_id] = request.arrival
        key = self.policy.key(request)
        current = self._priority.get(request.platter_id)
        improved = current is None or key < current
        if improved:
            self._priority[request.platter_id] = key
            heapq.heappush(self._select_heap, (key, request.platter_id))
        self.total_enqueued += 1
        if current is None:
            return True
        return improved and getattr(self.policy, "refresh_on_improvement", True)

    def earliest_for(self, platter_id: str) -> Optional[float]:
        """Earliest queued arrival for a platter, or None if not pending."""
        return self._earliest.get(platter_id)

    def priority_for(self, platter_id: str) -> Optional[float]:
        """The platter's fetch-priority key, or None if not pending.

        Equals :meth:`earliest_for` under the arrival-order policy; under
        a deadline-aware policy it is the smallest queued request key.
        """
        return self._priority.get(platter_id)

    @property
    def pending_requests(self) -> int:
        """Total queued requests across all pending platters."""
        return sum(len(q) for q in self._by_platter.values())

    @property
    def pending_platters(self) -> int:
        """Number of platters with at least one queued request."""
        return len(self._by_platter)

    def pending_bytes_by_platter(self) -> Dict[str, int]:
        """Queued bytes per pending platter (work-stealing load input)."""
        return {
            platter: sum(r.size_bytes for r in queue)
            for platter, queue in self._by_platter.items()
        }

    def has_work(self, platter_id: str) -> bool:
        """Whether the platter has any queued requests."""
        return platter_id in self._by_platter

    def queued_for(self, platter_id: str) -> List[SimRequest]:
        """A copy of the platter's queued requests, in arrival order."""
        return list(self._by_platter.get(platter_id, []))

    # ------------------------------------------------------------------ #
    # Fetch selection
    # ------------------------------------------------------------------ #

    def select_platter(
        self, accessible: Callable[[str], bool]
    ) -> Optional[str]:
        """Most-urgent pending platter among accessible, unassigned ones.

        Work conservation: a platter whose queued request is most urgent
        but which is currently inaccessible (obscured / being fetched) is
        skipped; it will be selected as soon as its resources free up.

        Backed by a lazily-invalidated min-heap of (priority, platter id)
        via :func:`select_min_eligible`: stale entries (priority no longer
        current) are discarded on pop; current entries that were popped —
        skipped or chosen — are pushed back, so the call is
        side-effect-free for callers. Equal-priority platters resolve by
        id, not by insertion history.
        """
        return select_min_eligible(
            self._select_heap,
            lambda platter, key: self._priority.get(platter) == key,
            lambda platter: platter not in self._in_service
            and accessible(platter),
        )

    def begin_service(self, platter_id: str) -> None:
        """Mark the platter assigned (fetch dispatched)."""
        if platter_id in self._in_service:
            raise ValueError(f"platter {platter_id} already in service")
        self._in_service.add(platter_id)

    def take_batch(self, platter_id: str) -> List[SimRequest]:
        """All queued requests for a mounted platter (fetch amortization).

        With ``amortize_batch`` False, only the earliest request is taken
        (ablation of the paper's default policy).
        """
        queue = self._by_platter.get(platter_id, [])
        if not queue:
            return []
        if self.amortize_batch:
            batch = queue
            del self._by_platter[platter_id]
            del self._earliest[platter_id]
            del self._priority[platter_id]
        else:
            batch = [queue.pop(0)]
            if queue:
                self._earliest[platter_id] = queue[0].arrival
                key = min(self.policy.key(r) for r in queue)
                self._priority[platter_id] = key
                heapq.heappush(self._select_heap, (key, platter_id))
            else:
                del self._by_platter[platter_id]
                del self._earliest[platter_id]
                del self._priority[platter_id]
        return batch

    def end_service(self, platter_id: str) -> None:
        """Platter returned to its shelf; it may be selected again."""
        self._in_service.discard(platter_id)

    def remove_pending(self, platter_id: str) -> List[SimRequest]:
        """Withdraw and return a platter's queued requests.

        Used when a platter becomes unavailable (failure blast zone): its
        queue is re-routed through cross-platter recovery. Refuses platters
        currently in service (they are mounted, hence accessible).
        """
        if platter_id in self._in_service:
            raise ValueError(f"platter {platter_id} is in service")
        queue = self._by_platter.pop(platter_id, [])
        self._earliest.pop(platter_id, None)
        self._priority.pop(platter_id, None)
        return queue

    def in_service(self, platter_id: str) -> bool:
        """Whether the platter is assigned to a fetch or mounted."""
        return platter_id in self._in_service
