"""Simulation-side request state.

A :class:`SimRequest` tracks one user read through the library: arrival,
target platter/track(s), and completion. When the target platter is
unavailable (Section 7.6), the request *fans out* into sub-reads of the
matching tracks on the other platters of its platter-set (cross-platter
network coding recovery) and completes when the last sub-read finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..workload.traces import ReadRequest


@dataclass
class SimRequest:
    """One read request inside the simulator."""

    request_id: int
    arrival: float
    platter_id: str
    size_bytes: int
    num_tracks: int = 1
    track_start: int = 0  # first track of the file on its platter
    measured: bool = True  # inside the measured interval (§7.2)?
    completion: Optional[float] = None
    parent: Optional["SimRequest"] = None
    pending_subreads: int = 0
    children: List["SimRequest"] = field(default_factory=list)
    # Transient-fault lifecycle bookkeeping (chaos harness):
    retries: int = 0  # read-retry ladder rungs taken while serving
    metadata_attempts: int = 0  # arrivals bounced off a metadata outage
    degraded: bool = False  # touched any retry / recovery / outage path
    is_recovery: bool = False  # a cross-platter NC recovery sub-read
    # Multi-tenant QoS tags ("" / None when tenancy is not in play):
    tenant: str = ""
    slo_class: str = ""
    deadline: Optional[float] = None  # absolute completion deadline

    @classmethod
    def from_trace(
        cls, request_id: int, request: ReadRequest, measured: bool
    ) -> "SimRequest":
        if request.platter_id is None:
            raise ValueError(f"request {request.file_id} has no platter placement")
        return cls(
            request_id=request_id,
            arrival=request.time,
            platter_id=request.platter_id,
            size_bytes=request.size_bytes,
            num_tracks=max(1, request.num_tracks),
            measured=measured,
            tenant=request.tenant,
        )

    @property
    def done(self) -> bool:
        return self.completion is not None

    @property
    def completion_time(self) -> float:
        """Delay from arrival to last byte out of the library (§7.2)."""
        if self.completion is None:
            raise ValueError(f"request {self.request_id} not complete")
        return self.completion - self.arrival

    def complete(self, now: float) -> Optional["SimRequest"]:
        """Mark done; propagate completion up the sub-read hierarchy.

        Sub-reads can nest (a sharded file whose shard needed cross-platter
        recovery is parent -> shard -> recovery reads), so completion walks
        upward: each finished level decrements its parent. Returns the
        topmost request this completion finished, or None.
        """
        self.completion = now
        finished: Optional[SimRequest] = None
        node = self.parent
        while node is not None:
            node.pending_subreads -= 1
            if node.pending_subreads > 0 or node.completion is not None:
                break
            node.completion = now
            finished = node
            node = node.parent
        return finished

    def mark_degraded(self) -> None:
        """Flag this request (and its ancestors) as served in degraded mode.

        Degraded-mode tail completion (resilience metrics) is computed over
        top-level requests carrying this flag."""
        node: Optional[SimRequest] = self
        while node is not None:
            node.degraded = True
            node = node.parent

    def fan_out(self, recovery_platters: List[str], request_ids: List[int]) -> List["SimRequest"]:
        """Expand into cross-platter recovery sub-reads (one per platter).

        Each sub-read reads the matching tracks on one surviving platter of
        the platter-set; the parent completes when all do (the 16x read
        amplification of Figure 8).
        """
        if len(request_ids) != len(recovery_platters):
            raise ValueError("need one request id per recovery platter")
        subs = []
        for rid, platter in zip(request_ids, recovery_platters):
            sub = SimRequest(
                request_id=rid,
                arrival=self.arrival,
                platter_id=platter,
                size_bytes=self.size_bytes,
                num_tracks=self.num_tracks,
                measured=False,  # the parent carries the measurement
                parent=self,
                is_recovery=True,
                tenant=self.tenant,
                slo_class=self.slo_class,
                deadline=self.deadline,
            )
            subs.append(sub)
        self.pending_subreads = len(subs)
        self.children = subs
        return subs
