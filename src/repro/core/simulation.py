"""Compatibility shim over the :mod:`repro.core.sim` kernel package.

The full-system discrete-event simulator used to live here as one
1,900-line module. It is now decomposed into the composable subsystems of
:mod:`repro.core.sim` (robotics, dispatch, request lifecycle, faults,
verification — see that package's docstring for the map); this module
re-exports the public surface so historical imports — and pickles that
reference ``repro.core.simulation.SimConfig`` — keep working unchanged.
"""

from .sim import DriveSim, LibrarySimulation, ShuttleSim, SimConfig

# Historical private aliases (tests and downstream forks constructed these).
_DriveSim = DriveSim
_ShuttleSim = ShuttleSim

__all__ = [
    "LibrarySimulation",
    "SimConfig",
    "DriveSim",
    "ShuttleSim",
    "_DriveSim",
    "_ShuttleSim",
]
