"""Full-system discrete event simulation of a Silica library.

This is the "digital twin" of Section 7: a library (racks, read drives,
shuttles) driven by a read trace, with mechanical durations sampled from the
prototype-calibrated models of :mod:`repro.library.motion`, the scheduler
and traffic-management policies of Section 4.1, verification-in-the-gaps of
Section 3.1, and cross-platter recovery reads of Section 7.6.

The lifecycle of one read request:

1. arrival -> enqueued in the :class:`~repro.core.scheduler.RequestScheduler`
   (grouped by platter);
2. a free shuttle is assigned by the traffic policy, travels to the shelf,
   picks the platter, delivers it to a read drive with a free customer slot;
3. the drive fast-switches away from its verification platter, mounts the
   customer platter, and services *all* queued requests for it (seek + scan
   per request; a track is the minimum read unit);
4. the drive unmounts, switches back to verification, and a shuttle returns
   the platter to its fixed home slot (Section 6);
5. completion time = last byte out minus arrival (Section 7.2).

Baselines: ``policy="sp"`` (free-roaming shortest paths) and ``policy="ns"``
(no shuttles — platters teleport; the lower bound on shuttle overhead).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultSchedule
    from ..observability.tracer import Tracer
    from ..tenancy.model import TenantRegistry

from ..library.layout import LibraryConfig, LibraryLayout, Position, SlotId
from ..library.shuttle import Shuttle
from ..media.read_drive import ReadDriveConfig, ReadDriveModel
from ..workload.traces import ReadRequest, ReadTrace
from .events import Simulation
from .metrics import (
    CompletionStats,
    Counter,
    DriveUtilization,
    MetricsRegistry,
    QoSMetrics,
    ResilienceMetrics,
    ShuttleMetrics,
    SimulationReport,
)
from .requests import SimRequest
from .scheduler import RequestScheduler
from .traffic import PartitionedPolicy, ShortestPathsPolicy, TrafficPolicy


@dataclass(frozen=True)
class SimConfig:
    """Configuration of one library simulation run."""

    drive_throughput_mbps: float = 60.0
    num_drives: int = 20
    num_shuttles: int = 20
    policy: str = "silica"  # "silica" | "sp" | "ns"
    work_stealing: bool = True
    amortize_batch: bool = True
    fast_switching: bool = True
    track_payload_bytes: float = 20e6  # 200 layers x 100 kB sectors
    nc_read_overhead: float = 0.10  # within-track NC + framing read inflation
    num_platters: int = 3000
    platter_set_information: int = 16
    platter_set_redundancy: int = 3
    unavailable_fraction: float = 0.0
    shard_tracks_limit: int = 50  # large files shard across platters (§6)
    platter_tracks: int = 100_000  # tracks per platter (seek distances)
    sort_batch_by_track: bool = False  # elevator read order (§4.1 ablation)
    battery_management: bool = True  # controller monitors battery (§4.1)
    battery_capacity_joules: float = 400_000.0
    battery_low_threshold: float = 0.15
    recharge_seconds: float = 900.0
    # Transient-fault lifecycle (chaos harness): per-attempt probability of a
    # transient sector read error, and the read-retry escalation ladder's
    # costs — a re-read costs another seek+scan; the deeper LDPC iteration
    # budget costs ``deep_decode_factor`` extra scans and leaves a residual
    # error probability of ``prob * deep_decode_residual`` before the last
    # rung (cross-platter NC recovery) is taken.
    transient_read_error_prob: float = 0.0
    deep_decode_factor: float = 2.0
    deep_decode_residual: float = 0.1
    # Capped exponential backoff for arrivals hitting a metadata outage.
    metadata_backoff_base_seconds: float = 1.0
    metadata_backoff_cap_seconds: float = 60.0
    # Multi-tenant QoS: the platter-fetch priority policy ("arrival" is the
    # §4.1 default; "deadline" is the weighted-deadline policy and needs a
    # tenant registry), plus the tenant mix itself. With ``tenancy`` set,
    # ingress quotas are enforced at trace intake and the report grows a
    # per-tenant / per-class QoS block.
    fetch_policy: str = "arrival"
    tenancy: Optional["TenantRegistry"] = None
    seed: int = 0
    library: LibraryConfig = field(default_factory=LibraryConfig)

    def __post_init__(self) -> None:
        if self.policy not in ("silica", "sp", "ns"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.fetch_policy not in ("arrival", "deadline"):
            raise ValueError(f"unknown fetch policy {self.fetch_policy!r}")
        if self.fetch_policy == "deadline" and self.tenancy is None:
            raise ValueError("fetch_policy='deadline' requires a tenancy registry")
        if self.num_shuttles > self.library.max_shuttles:
            raise ValueError(
                f"{self.num_shuttles} shuttles exceed the panel cap of "
                f"{self.library.max_shuttles} (2x read drives)"
            )
        if not 0 <= self.unavailable_fraction < 1:
            raise ValueError("unavailable_fraction must be in [0, 1)")
        if not 0 <= self.transient_read_error_prob < 1:
            raise ValueError("transient_read_error_prob must be in [0, 1)")
        if self.metadata_backoff_base_seconds <= 0:
            raise ValueError("metadata_backoff_base_seconds must be positive")

    @property
    def track_read_bytes(self) -> float:
        """Raw bytes scanned per track (payload + NC/framing overhead)."""
        return self.track_payload_bytes * (1 + self.nc_read_overhead)


class _DriveSim:
    """State machine of one read drive inside the simulation."""

    def __init__(self, drive_id: int, model: ReadDriveModel, position: Position):
        self.drive_id = drive_id
        self.model = model
        self.position = position
        self.slot_reserved = False  # customer slot claimed by a fetch in flight
        self.customer_platter: Optional[str] = None
        self.serving = False
        self.awaiting_return: Optional[str] = None
        self.return_assigned = False
        self.read_seconds = 0.0
        self.switch_seconds = 0.0
        self.seek_seconds = 0.0
        self.head_track = 0
        self.failed = False
        self.current_mount: Optional[int] = None  # mount-cycle id for tracing

    @property
    def customer_slot_free(self) -> bool:
        return (
            not self.slot_reserved
            and self.customer_platter is None
            and self.awaiting_return is None
            and not self.failed
        )

    @property
    def occupied(self) -> bool:
        """A fault must wait for an operation boundary on this drive."""
        return bool(self.serving or self.awaiting_return or self.slot_reserved)


class _ShuttleSim:
    """Wrapper pairing a Shuttle with its simulation busy flag."""

    def __init__(self, shuttle: Shuttle):
        self.shuttle = shuttle
        self.busy = False

    @property
    def idle(self) -> bool:
        return not self.busy and not self.shuttle.failed


class LibrarySimulation:
    """One library, one trace, one report.

    ``tracer`` (a :class:`repro.observability.Tracer`) switches on
    structured event tracing; the default ``None`` keeps every emission
    site at a single pointer comparison, so an untraced run pays no
    observable overhead (guarded by a regression test). ``metrics`` is the
    run's :class:`~repro.core.metrics.MetricsRegistry`; all accumulation
    counters live there (exportable as stable JSON / Prometheus text).
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        tracer: Optional["Tracer"] = None,
    ):
        self.config = config or SimConfig()
        cfg = self.config
        self.sim = Simulation()
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        self.rng = np.random.default_rng(cfg.seed)
        lib_cfg = cfg.library
        if cfg.num_drives != lib_cfg.num_read_drives:
            per_rack = -(-cfg.num_drives // 2)  # ceil split over two racks
            per_rack = min(10, max(2, per_rack))
            lib_cfg = replace(lib_cfg, drives_per_read_rack=per_rack)
        self.layout = LibraryLayout(lib_cfg)
        drive_cfg = ReadDriveConfig(throughput_mbps=cfg.drive_throughput_mbps)
        self.drives: List[_DriveSim] = []
        for bay in self.layout.drives[: cfg.num_drives]:
            model = ReadDriveModel(config=drive_cfg, seed=cfg.seed * 1000 + bay.drive_id)
            self.drives.append(_DriveSim(bay.drive_id, model, bay.position))
        raw_shuttles = [
            Shuttle(
                i,
                home=Position(0.0, 0),
                battery_capacity_joules=cfg.battery_capacity_joules,
            )
            for i in range(cfg.num_shuttles)
        ]
        if cfg.policy == "silica":
            self.policy: Optional[TrafficPolicy] = PartitionedPolicy(
                self.layout, raw_shuttles, self.rng, work_stealing=cfg.work_stealing
            )
        elif cfg.policy == "sp":
            self.policy = ShortestPathsPolicy(self.layout, raw_shuttles, self.rng)
        else:  # ns
            self.policy = None
        self.shuttles = [_ShuttleSim(s) for s in raw_shuttles]
        # Tenancy is optional and imported lazily so the core simulator has
        # no hard dependency on the QoS subsystem.
        self.admission = None
        fetch_policy = None
        if cfg.tenancy is not None:
            from ..tenancy.admission import AdmissionController
            from ..tenancy.qos import policy_for

            self.admission = AdmissionController(cfg.tenancy)
            fetch_policy = policy_for(cfg.fetch_policy, cfg.tenancy)
        self.scheduler = RequestScheduler(
            amortize_batch=cfg.amortize_batch, policy=fetch_policy
        )
        # Platter population and placement.
        self.platters: List[str] = [f"P{i:05d}" for i in range(cfg.num_platters)]
        self._platter_index = {p: i for i, p in enumerate(self.platters)}
        self._home_slot: Dict[str, SlotId] = {}
        self._place_platters()
        # Fetch-candidate indexes: per-partition heaps (Silica) and a global
        # heap (SP/NS), holding (fetch priority, platter) with lazy
        # invalidation. Priority is the scheduler policy's key — earliest
        # queued arrival by default, weighted-deadline urgency under QoS.
        self._platter_partition: Dict[str, int] = {}
        self._partition_heaps: Dict[int, List[Tuple[float, str]]] = {}
        self._partition_load: Dict[int, float] = {}
        if isinstance(self.policy, PartitionedPolicy):
            for platter, slot in self._home_slot.items():
                pid = self.policy.partition_of_slot(slot)
                self._platter_partition[platter] = pid
            for p in self.policy.partitions:
                self._partition_heaps[p.index] = []
                self._partition_load[p.index] = 0.0
        self._global_heap: List[Tuple[float, str]] = []
        self.unavailable: set = set()
        if cfg.unavailable_fraction > 0:
            self._sample_unavailable()
        # Bookkeeping: run counters accumulate on the metrics registry
        # (stable-keyed JSON / Prometheus export); the legacy attribute
        # names remain readable as properties below.
        self.metrics = MetricsRegistry(prefix="sim_")
        m = self.metrics
        self._c_bytes_read = m.counter(
            "bytes_read_total", "Raw bytes scanned off glass by read drives", "bytes"
        )
        self._c_recharges = m.counter(
            "recharges_total", "Shuttle battery recharge cycles started"
        )
        self._c_faults_injected = m.counter(
            "faults_injected_total", "Component faults that actually fired"
        )
        self._c_faults_repaired = m.counter(
            "faults_repaired_total", "Faults whose repair clock returned the component"
        )
        self._c_downtime = m.counter(
            "downtime_component_seconds_total",
            "Component-seconds of downtime from closed (repaired) faults",
            "seconds",
        )
        self._c_metadata_retries = m.counter(
            "metadata_retries_total", "Arrivals bounced off a metadata outage"
        )
        self._c_reread = m.counter(
            "reread_retries_total", "Retry-ladder rung 1: in-place track re-reads"
        )
        self._c_deep_decode = m.counter(
            "deep_decodes_total", "Retry-ladder rung 2: deeper LDPC iteration budgets"
        )
        self._c_escalations = m.counter(
            "recovery_escalations_total",
            "Retry-ladder rung 3: escalations to cross-platter NC recovery",
        )
        self._c_recovery_bytes = m.counter(
            "recovery_bytes_read_total",
            "Raw bytes read by cross-platter NC recovery sub-reads",
            "bytes",
        )
        self._c_fanout_user_bytes = m.counter(
            "recovery_user_bytes_total",
            "User bytes recovered via cross-platter fan-out",
            "bytes",
        )
        self._c_requests_lost = m.counter(
            "requests_lost_total", "Reads abandoned with no surviving recovery peer"
        )
        self._c_steals = m.counter(
            "work_steals_total", "Cross-partition work-stealing fetches"
        )
        self._h_travel = m.histogram(
            "shuttle_travel_seconds",
            "Per-trip shuttle travel time (including congestion)",
            "seconds",
            buckets=(0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        )
        self._h_completion = m.histogram(
            "request_completion_seconds",
            "Measured top-level request completion time (arrival to last byte)",
            "seconds",
        )
        # QoS counters exist only on tenancy-enabled runs so single-tenant
        # metric exports stay byte-identical with earlier versions.
        self._c_admission_rejects: Optional[Counter] = None
        self._c_deadline_misses: Optional[Counter] = None
        if cfg.tenancy is not None:
            self._c_admission_rejects = m.counter(
                "admission_rejections_total",
                "Reads rejected by tenant ingress quotas",
            )
            self._c_deadline_misses = m.counter(
                "deadline_misses_total",
                "Measured completions past their SLO-class deadline",
            )
        self.all_requests: List[SimRequest] = []
        self._next_request_id = 0
        self._mount_counter = 0
        self._travel_times: List[float] = []
        self._dispatch_scheduled = False
        # Fluid verification queue (Section 3.1): freshly written platters
        # queue for full read-back; the drives' idle (verify) time drains
        # the queue at aggregate throughput. Tracked as a fluid integrator
        # updated at every drive state change.
        self._verifying_drives = len(self.drives)
        self._verify_rate_per_drive = cfg.drive_throughput_mbps * 1e6
        self._last_verify_update = 0.0
        self._verify_drained = 0.0
        self._verify_queue: List[Tuple[float, float, float]] = []  # (arrival, bytes, cum_end)
        self._verify_cum_demand = 0.0
        self.verify_latencies: List[float] = []
        # Failure-injection state: which shuttle covers each partition
        # (self-coverage initially) and per-partition drive re-routing.
        self._partition_cover: Dict[int, int] = {}
        if isinstance(self.policy, PartitionedPolicy):
            for p in self.policy.partitions:
                self._partition_cover[p.index] = p.index
        self._drive_override: Dict[int, int] = {}
        # Fault lifecycle (repair clocks, §4/§6 chaos harness): faults that
        # struck a busy component wait here and fire from the dispatch hook
        # at the next operation boundary — no polling.
        self._pending_faults: List[Tuple[str, int, Optional[float]]] = []
        self._metadata_waiters: List[Callable[[], None]] = []
        self._active_fault_started: Dict[Tuple[str, int], float] = {}
        self._fault_platters: Dict[Tuple[str, int], set] = {}
        self._repair_durations: List[float] = []
        # Metadata service availability (arrivals need a metadata lookup).
        self._metadata_available = True
        if self.tracer is not None:
            self._install_shuttle_hooks()

    # ------------------------------------------------------------------ #
    # Legacy counter views (the registry is the source of truth)
    # ------------------------------------------------------------------ #

    @property
    def bytes_read(self) -> float:
        return self._c_bytes_read.value

    @property
    def recharges(self) -> int:
        return int(self._c_recharges.value)

    @property
    def failures_injected(self) -> int:
        return int(self._c_faults_injected.value)

    @property
    def faults_repaired(self) -> int:
        return int(self._c_faults_repaired.value)

    @property
    def metadata_retries(self) -> int:
        return int(self._c_metadata_retries.value)

    @property
    def reread_retries(self) -> int:
        return int(self._c_reread.value)

    @property
    def deep_decodes(self) -> int:
        return int(self._c_deep_decode.value)

    @property
    def recovery_escalations(self) -> int:
        return int(self._c_escalations.value)

    @property
    def recovery_bytes_read(self) -> float:
        return self._c_recovery_bytes.value

    @property
    def requests_lost(self) -> int:
        return int(self._c_requests_lost.value)

    @property
    def events_processed(self) -> int:
        """Events fired by the underlying engine so far."""
        return self.sim.events_processed

    @property
    def events_per_second(self) -> float:
        """Wall-clock event-loop throughput of the underlying engine."""
        return self.sim.events_per_second

    def _install_shuttle_hooks(self) -> None:
        """Route shuttle model events (move/pick/place) into the tracer."""

        def make_hook(shuttle: Shuttle) -> Callable[..., None]:
            component = f"shuttle:{shuttle.shuttle_id}"

            def hook(kind: str, attrs: Dict[str, object]) -> None:
                self.tracer.emit(self.sim.now, f"shuttle.{kind}", component=component, **attrs)

            return hook

        for shuttle_sim in self.shuttles:
            shuttle_sim.shuttle.on_event = make_hook(shuttle_sim.shuttle)

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def _place_platters(self) -> None:
        slots = list(self.layout.all_slots())
        if len(slots) < len(self.platters):
            raise ValueError(
                f"{len(self.platters)} platters exceed capacity {len(slots)}"
            )
        order = self.rng.permutation(len(slots))
        for platter, idx in zip(self.platters, order):
            slot = slots[int(idx)]
            self.layout.store(platter, slot)
            self._home_slot[platter] = slot

    def _sample_unavailable(self) -> None:
        """Uniformly random unavailable platters, capped at R per platter-set.

        The blast-zone placement invariant (Section 6) guarantees a single
        failure removes at most R platters of any set; we keep the sampled
        pattern consistent with that invariant so recovery is always
        possible.
        """
        cfg = self.config
        group = cfg.platter_set_information + cfg.platter_set_redundancy
        target = int(round(cfg.unavailable_fraction * len(self.platters)))
        per_set: Dict[int, int] = {}
        order = self.rng.permutation(len(self.platters))
        for idx in order:
            if len(self.unavailable) >= target:
                break
            set_id = int(idx) // group
            if per_set.get(set_id, 0) >= cfg.platter_set_redundancy:
                continue
            per_set[set_id] = per_set.get(set_id, 0) + 1
            self.unavailable.add(self.platters[int(idx)])

    def platter_set_of(self, platter_id: str) -> List[str]:
        cfg = self.config
        group = cfg.platter_set_information + cfg.platter_set_redundancy
        index = self._platter_index[platter_id]
        start = (index // group) * group
        return self.platters[start : start + group]

    # ------------------------------------------------------------------ #
    # Request intake
    # ------------------------------------------------------------------ #

    def assign_trace(
        self,
        trace: ReadTrace,
        measure_start: float,
        measure_end: float,
        skew: Optional[float] = None,
    ) -> None:
        """Map trace requests onto platters and schedule their arrivals.

        ``skew`` enables a Zipf distribution over platters (Section 7.5's
        skewed-request experiment); None means uniform (the default
        methodology: "we distribute the read requests to platters stored in
        the library uniformly").
        """
        n = len(self.platters)
        weights = None
        platter_order = None
        if skew is not None:
            ranks = np.arange(1, n + 1, dtype=np.float64)
            weights = ranks**-skew
            weights /= weights.sum()
            platter_order = self.rng.permutation(n)
        for request in trace:
            if weights is None:
                platter = self.platters[int(self.rng.integers(0, n))]
            else:
                rank = int(self.rng.choice(n, p=weights))
                platter = self.platters[int(platter_order[rank])]
            measured = measure_start <= request.time < measure_end
            self._submit(request, platter, measured)

    def _submit(self, request: ReadRequest, platter: str, measured: bool) -> None:
        cfg = self.config
        slo_class = ""
        deadline: Optional[float] = None
        if cfg.tenancy is not None:
            # Ingress admission: trace requests are processed in time order,
            # so charging the token bucket at ``request.time`` replays the
            # frontend's decisions deterministically.
            if self.admission is not None and not self.admission.admit(
                request.tenant, request.size_bytes, request.time
            ):
                if self._c_admission_rejects is not None:
                    self._c_admission_rejects.inc()
                if self.tracer is not None:
                    self.tracer.emit(
                        request.time,
                        "admission.reject",
                        tenant=request.tenant,
                        size_bytes=request.size_bytes,
                    )
                return
            slo = cfg.tenancy.class_of(request.tenant)
            slo_class = slo.name
            deadline = request.time + slo.deadline_seconds
            if self.tracer is not None:
                self.tracer.emit(
                    request.time,
                    "admission.accept",
                    tenant=request.tenant,
                    size_bytes=request.size_bytes,
                )
        total_tracks = max(1, int(math.ceil(request.size_bytes / cfg.track_payload_bytes)))
        # Large files are sharded across platters to parallelize their reads
        # (Section 6); each shard is an independent sub-read.
        if total_tracks > cfg.shard_tracks_limit:
            parent = SimRequest(
                request_id=self._new_id(),
                arrival=request.time,
                platter_id=platter,
                size_bytes=request.size_bytes,
                num_tracks=total_tracks,
                measured=measured,
                tenant=request.tenant,
                slo_class=slo_class,
                deadline=deadline,
            )
            self.all_requests.append(parent)
            num_shards = -(-total_tracks // cfg.shard_tracks_limit)
            shard_platters = self._distinct_platters(num_shards)
            shards = []
            tracks_left = total_tracks
            for p in shard_platters:
                tracks = min(cfg.shard_tracks_limit, tracks_left)
                tracks_left -= tracks
                shards.append(
                    SimRequest(
                        request_id=self._new_id(),
                        arrival=request.time,
                        platter_id=p,
                        size_bytes=int(tracks * cfg.track_payload_bytes),
                        num_tracks=tracks,
                        track_start=self._random_track_start(tracks),
                        measured=False,
                        parent=parent,
                        tenant=request.tenant,
                        slo_class=slo_class,
                        deadline=deadline,
                    )
                )
                if tracks_left <= 0:
                    break
            parent.pending_subreads = len(shards)
            parent.children = shards
            for shard in shards:
                self.all_requests.append(shard)
                self._ingest(shard)
            return
        sim_request = SimRequest(
            request_id=self._new_id(),
            arrival=request.time,
            platter_id=platter,
            size_bytes=request.size_bytes,
            num_tracks=total_tracks,
            track_start=self._random_track_start(total_tracks),
            measured=measured,
            tenant=request.tenant,
            slo_class=slo_class,
            deadline=deadline,
        )
        self.all_requests.append(sim_request)
        self._ingest(sim_request)

    def _ingest(self, sim_request: SimRequest) -> None:
        """Route one (sub-)request: direct read, or cross-platter recovery.

        Availability is re-checked when the arrival event fires (see
        :meth:`_schedule_arrival`), so requests routed before a dynamic
        failure still recover correctly.
        """
        if sim_request.platter_id in self.unavailable:
            if not self._fan_out_recovery(sim_request):
                self._abandon_request(sim_request)
            return
        self._schedule_arrival(sim_request)

    def _abandon_request(self, sim_request: SimRequest) -> None:
        """No surviving recovery peer: the read is lost.

        Only reachable when an entire platter-set is simultaneously
        unavailable — far outside the blast-zone invariant — but the sim
        must stay sound (and terminating) even there, so the request
        completes immediately and is tallied as lost."""
        self._c_requests_lost.inc()
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now, "request.lost", request_id=sim_request.request_id
            )
        sim_request.mark_degraded()
        self._complete_request(sim_request)

    def _complete_request(self, sim_request: SimRequest) -> None:
        """Completion bookkeeping shared by every completion site:
        propagate up the sub-read hierarchy, record the completion-time
        histogram for measured top-level requests, and trace."""
        now = self.sim.now
        finished = sim_request.complete(now)
        tr = self.tracer
        if tr is not None:
            tr.emit(now, "request.complete", request_id=sim_request.request_id)
            if finished is not None:
                tr.emit(now, "request.complete", request_id=finished.request_id)
        for node in (sim_request, finished):
            if node is not None and node.measured and node.parent is None:
                self._h_completion.observe(node.completion_time)
                if node.deadline is not None and now > node.deadline:
                    if self._c_deadline_misses is not None:
                        self._c_deadline_misses.inc()
                    if tr is not None:
                        tr.emit(
                            now,
                            "request.deadline_miss",
                            request_id=node.request_id,
                            tenant=node.tenant,
                            slo_class=node.slo_class,
                            late_seconds=now - node.deadline,
                        )

    def _fan_out_recovery(self, sim_request: SimRequest) -> List[SimRequest]:
        """Cross-platter NC: read the matching tracks on I_p available
        platters of the set (Section 7.6's 16x read amplification). If
        dynamic failures left fewer than I_p peers available, recovery
        proceeds degraded with what remains (real deployments prevent this
        via blast-zone-aware placement; the simulator places uniformly).
        Returns the recovery sub-reads (empty when no peer survives)."""
        cfg = self.config
        peers = [
            p
            for p in self.platter_set_of(sim_request.platter_id)
            if p != sim_request.platter_id and p not in self.unavailable
        ]
        recovery = peers[: cfg.platter_set_information]
        subs = sim_request.fan_out(recovery, [self._new_id() for _ in recovery])
        if subs:
            sim_request.mark_degraded()
            self._c_fanout_user_bytes.inc(sim_request.size_bytes)
            if self.tracer is not None:
                self.tracer.emit(
                    self.sim.now,
                    "recovery.fanout",
                    request_id=sim_request.request_id,
                    peers=len(subs),
                    platter=sim_request.platter_id,
                )
        for sub in subs:
            self.all_requests.append(sub)
            self._schedule_arrival(sub)
        return subs

    def _schedule_arrival(self, sim_request: SimRequest) -> None:
        cfg = self.config

        def arrive() -> None:
            # Every arrival needs a metadata lookup; during an outage the
            # request parks until the repair event fires, then re-arrives
            # after its capped-exponential backoff (the client's next poll
            # catches the failover). Event-driven: an outage that never
            # repairs costs zero events instead of an unbounded retry storm.
            if not self._metadata_available:
                self._c_metadata_retries.inc()
                sim_request.metadata_attempts += 1
                sim_request.mark_degraded()
                self._metadata_waiters.append(retry_after_repair)
                if self.tracer is not None:
                    self.tracer.emit(
                        self.sim.now,
                        "request.metadata_blocked",
                        request_id=sim_request.request_id,
                        attempts=sim_request.metadata_attempts,
                    )
                return
            if self.tracer is not None:
                self.tracer.emit(
                    self.sim.now,
                    "request.arrival",
                    request_id=sim_request.request_id,
                    arrival=sim_request.arrival,
                    platter=sim_request.platter_id,
                    size_bytes=sim_request.size_bytes,
                    recovery=sim_request.is_recovery,
                )
            # A failure may have struck between routing and arrival.
            if sim_request.platter_id in self.unavailable:
                if not self._fan_out_recovery(sim_request):
                    self._abandon_request(sim_request)
            else:
                self._enqueue(sim_request)
            self._request_dispatch()

        def retry_after_repair() -> None:
            exponent = min(sim_request.metadata_attempts - 1, 32)
            delay = min(
                cfg.metadata_backoff_base_seconds * (2.0 ** exponent),
                cfg.metadata_backoff_cap_seconds,
            )
            self.sim.schedule(delay, arrive, label="metadata-retry")

        # Re-ingested requests (failure re-routing) arrive "now"; their
        # original arrival stamp is kept for completion-time accounting.
        at = max(sim_request.arrival, self.sim.now)
        self.sim.schedule_at(at, arrive, label="arrival")

    def _enqueue(self, sim_request: SimRequest) -> None:
        improved = self.scheduler.enqueue(sim_request)
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now,
                "request.enqueue",
                request_id=sim_request.request_id,
                platter=sim_request.platter_id,
            )
        platter = sim_request.platter_id
        pid = self._platter_partition.get(platter)
        if pid is not None:
            self._partition_load[pid] += sim_request.size_bytes
        if improved:
            priority = self.scheduler.priority_for(platter)
            if priority is not None:
                self._push_candidate(platter, priority)

    def _push_candidate(self, platter: str, priority: float) -> None:
        entry = (priority, platter)
        heapq.heappush(self._global_heap, entry)
        pid = self._platter_partition.get(platter)
        if pid is not None:
            heapq.heappush(self._partition_heaps[pid], entry)

    def _pop_candidate(self, heap: List[Tuple[float, str]]) -> Optional[str]:
        """Earliest valid pending platter from a heap (lazy invalidation).

        Entries for platters that were serviced, are currently in service,
        or are unreachable are discarded; in-service platters with new
        pending work are re-pushed when their service ends.
        """
        while heap:
            _arrival, platter = heap[0]
            if (
                not self.scheduler.has_work(platter)
                or self.scheduler.in_service(platter)
                or platter in self.unavailable
                or self.layout.locate(platter) is None
            ):
                heapq.heappop(heap)
                continue
            heapq.heappop(heap)
            return platter
        return None

    def _distinct_platters(self, count: int) -> List[str]:
        """Distinct shard platters. Placement is failure-oblivious: shards
        were written long before any failure, so unavailable platters are
        legitimate targets — their shards get recovered via cross-platter
        NC like any other read (see :meth:`_ingest`)."""
        if count >= len(self.platters):
            return list(self.platters)
        picks = self.rng.choice(len(self.platters), size=count, replace=False)
        return [self.platters[int(i)] for i in picks]

    def _new_id(self) -> int:
        self._next_request_id += 1
        return self._next_request_id

    def _random_track_start(self, num_tracks: int) -> int:
        """Uniform file location on the platter (seek distances, Fig. 3d)."""
        upper = max(1, self.config.platter_tracks - num_tracks)
        return int(self.rng.integers(0, upper))

    def _seek_seconds(self, drive: "_DriveSim", target_track: int) -> float:
        """Distance-dependent XY seek, calibrated so uniformly random
        seeks reproduce the Figure 3(d) distribution (median ~0.6 s,
        maximum 2 s)."""
        distance = abs(drive.head_track - target_track) / max(1, self.config.platter_tracks)
        base = 0.05 + 1.95 * min(1.0, distance)
        jitter = float(self.rng.uniform(0.92, 1.08))
        return min(2.0, base * jitter)

    # ------------------------------------------------------------------ #
    # Dispatch loop
    # ------------------------------------------------------------------ #

    def _request_dispatch(self) -> None:
        """Coalesce dispatch work onto a single zero-delay event."""
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True

        def run() -> None:
            self._dispatch_scheduled = False
            self._dispatch()

        self.sim.schedule(0.0, run, label="dispatch")

    def _dispatch(self) -> None:
        # Faults that found their component busy fire here, at the next
        # operation boundary, *before* new work is assigned — the
        # event-driven replacement for the old fixed-interval retry poll.
        self._fire_pending_faults()
        if self.config.policy == "ns":
            self._dispatch_ns()
        elif self.config.policy == "silica":
            self._dispatch_returns()
            self._dispatch_silica()
        else:
            self._dispatch_returns()
            self._dispatch_sp()

    def _fire_pending_faults(self) -> None:
        """Fire deferred faults whose component reached an idle boundary."""
        if not self._pending_faults:
            return
        still_waiting: List[Tuple[str, int, Optional[float]]] = []
        for kind, target, repair_after in self._pending_faults:
            if kind == "shuttle":
                shuttle_sim = self.shuttles[target]
                if shuttle_sim.shuttle.failed:
                    continue  # a duplicate fault; the first one won
                if shuttle_sim.busy:
                    still_waiting.append((kind, target, repair_after))
                else:
                    self._fail_shuttle(target, repair_after=repair_after)
            else:
                drive = self.drives[target]
                if drive.failed:
                    continue
                if drive.occupied:
                    still_waiting.append((kind, target, repair_after))
                else:
                    self._fail_drive(target, repair_after=repair_after)
        self._pending_faults = still_waiting

    # -- returns -------------------------------------------------------- #

    def _dispatch_returns(self) -> None:
        for drive in self.drives:
            if drive.awaiting_return is None or drive.return_assigned:
                continue
            shuttle = self._shuttle_for_return(drive)
            if shuttle is None:
                continue
            drive.return_assigned = True
            self._start_return(shuttle, drive)

    def _shuttle_for_return(self, drive: _DriveSim) -> Optional[_ShuttleSim]:
        platter = drive.awaiting_return
        if isinstance(self.policy, PartitionedPolicy):
            partition = self._platter_partition[platter]
            cover = self._partition_cover.get(partition, partition)
            for s in self.shuttles:
                if s.idle and s.shuttle.partition == cover:
                    return s
            return None
        idle = [s for s in self.shuttles if s.idle]
        if not idle:
            return None
        return min(idle, key=lambda s: abs(s.shuttle.position.x - drive.position.x))

    def _start_return(self, shuttle_sim: _ShuttleSim, drive: _DriveSim) -> None:
        shuttle = shuttle_sim.shuttle
        shuttle_sim.busy = True
        platter = drive.awaiting_return
        home = self._home_slot[platter]
        home_pos = self.layout.slot_position(home)
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now,
                "return.start",
                component=f"shuttle:{shuttle.shuttle_id}",
                platter=platter,
                drive=drive.drive_id,
            )

        def at_drive() -> None:
            pick_dur = shuttle.pick(platter, self.rng)

            def picked() -> None:
                # Platter leaves the drive: customer slot frees up.
                drive.awaiting_return = None
                drive.return_assigned = False
                self._request_dispatch()
                self._move(shuttle, home_pos, at_home)

            self.sim.schedule(pick_dur, picked, label="return-pick")

        def at_home() -> None:
            place_dur = shuttle.place(self.rng)

            def placed() -> None:
                self.layout.store(platter, home)
                self._end_service(platter)
                shuttle_sim.busy = False
                if self.tracer is not None:
                    self.tracer.emit(
                        self.sim.now,
                        "return.done",
                        component=f"shuttle:{shuttle.shuttle_id}",
                        platter=platter,
                    )
                self._request_dispatch()

            self.sim.schedule(place_dur, placed, label="return-place")

        self._move(shuttle, drive.position, at_drive)

    def _end_service(self, platter: str) -> None:
        """Platter is back on its shelf: re-arm fetch candidacy."""
        self.scheduler.end_service(platter)
        priority = self.scheduler.priority_for(platter)
        if priority is not None:
            self._push_candidate(platter, priority)

    def _maybe_recharge(self, shuttle_sim: _ShuttleSim) -> bool:
        """Send a low-battery shuttle to charge (controller duty, §4.1).

        The shuttle is unavailable for the recharge duration; its partition
        is uncovered meanwhile, which is why the threshold is conservative.
        Returns True if a recharge was started.
        """
        cfg = self.config
        if not cfg.battery_management:
            return False
        shuttle = shuttle_sim.shuttle
        if shuttle.battery_fraction >= cfg.battery_low_threshold:
            return False
        shuttle_sim.busy = True
        self._c_recharges.inc()
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now,
                "shuttle.recharge",
                component=f"shuttle:{shuttle.shuttle_id}",
                battery_fraction=shuttle.battery_fraction,
                seconds=cfg.recharge_seconds,
            )

        def charged() -> None:
            shuttle.recharge()
            shuttle_sim.busy = False
            self._request_dispatch()

        self.sim.schedule(cfg.recharge_seconds, charged, label="recharge")
        return True

    # -- fetches: Silica partitioned policy ------------------------------ #

    def _dispatch_silica(self) -> None:
        policy = self.policy
        assert isinstance(policy, PartitionedPolicy)
        for shuttle_sim in self.shuttles:
            if not shuttle_sim.idle:
                continue
            if self._maybe_recharge(shuttle_sim):
                continue
            shuttle = shuttle_sim.shuttle
            for pid in self._covered_partitions(shuttle.partition):
                drive = self._partition_drive(pid)
                if drive is None or not drive.customer_slot_free:
                    continue
                platter = self._pop_candidate(self._partition_heaps[pid])
                stolen = False
                if platter is None and policy.work_stealing:
                    for donor in policy.steal_candidates(self._partition_load):
                        if donor == pid:
                            continue
                        platter = self._pop_candidate(self._partition_heaps[donor])
                        if platter is not None:
                            stolen = True
                            break
                if platter is None:
                    continue
                if stolen:
                    policy.steals += 1
                    self._c_steals.inc()
                    if self.tracer is not None:
                        self.tracer.emit(
                            self.sim.now,
                            "sched.steal",
                            component=f"shuttle:{shuttle.shuttle_id}",
                            platter=platter,
                            partition=pid,
                        )
                self._start_fetch(shuttle_sim, platter, drive)
                break  # this shuttle is busy now

    def _covered_partitions(self, own_partition: int) -> List[int]:
        """Partitions this shuttle serves: its own plus any adopted from
        failed shuttles (controller reassignment)."""
        return [
            pid
            for pid, cover in self._partition_cover.items()
            if cover == own_partition
        ]

    def _partition_drive(self, pid: int) -> Optional["_DriveSim"]:
        """The partition's drive, honouring failure re-routing."""
        assert isinstance(self.policy, PartitionedPolicy)
        drive_id = self._drive_override.get(
            pid, self.policy.partitions[pid].drive_id
        )
        if drive_id >= len(self.drives):
            return None
        drive = self.drives[drive_id]
        return None if drive.failed else drive

    # -- fetches: SP baseline -------------------------------------------- #

    def _dispatch_sp(self) -> None:
        for shuttle_sim in self.shuttles:
            if shuttle_sim.idle:
                self._maybe_recharge(shuttle_sim)
        while True:
            idle = [s for s in self.shuttles if s.idle]
            if not idle:
                return
            if not any(d.customer_slot_free for d in self.drives):
                return
            platter = self._pop_candidate(self._global_heap)
            if platter is None:
                return
            slot = self.layout.locate(platter)
            slot_pos = self.layout.slot_position(slot)
            shuttle_sim = min(
                idle,
                key=lambda s: abs(s.shuttle.position.x - slot_pos.x)
                + 0.5 * abs(s.shuttle.position.level - slot_pos.level),
            )
            drive = self._drive_for(shuttle_sim.shuttle, slot)
            if drive is None:
                # No free drive after all; put the candidate back.
                self._push_candidate(platter, self.scheduler.priority_for(platter) or 0.0)
                return
            self._start_fetch(shuttle_sim, platter, drive)

    def _drive_for(self, shuttle: Shuttle, slot: SlotId) -> Optional[_DriveSim]:
        def free(drive_id: int) -> bool:
            return drive_id < len(self.drives) and self.drives[drive_id].customer_slot_free

        drive_id = self.policy.drive_for(shuttle, slot, free)
        if drive_id is None:
            return None
        return self.drives[drive_id]

    # -- the fetch trip --------------------------------------------------- #

    def _start_fetch(self, shuttle_sim: _ShuttleSim, platter: str, drive: _DriveSim) -> None:
        shuttle = shuttle_sim.shuttle
        shuttle_sim.busy = True
        drive.slot_reserved = True
        self.scheduler.begin_service(platter)
        slot = self.layout.locate(platter)
        slot_pos = self.layout.slot_position(slot)
        fetch_started = self.sim.now
        if self.tracer is not None:
            self.tracer.emit(
                fetch_started,
                "fetch.assign",
                component=f"shuttle:{shuttle.shuttle_id}",
                platter=platter,
                drive=drive.drive_id,
            )

        def at_shelf() -> None:
            pick_dur = shuttle.pick(platter, self.rng)

            def picked() -> None:
                self.layout.remove(platter)
                self._move(shuttle, drive.position, at_drive)

            self.sim.schedule(pick_dur, picked, label="fetch-pick")

        def at_drive() -> None:
            place_dur = shuttle.place(self.rng)

            def placed() -> None:
                shuttle_sim.busy = False
                drive.slot_reserved = False
                self._on_customer_arrival(drive, platter, fetch_started=fetch_started)
                self._request_dispatch()

            self.sim.schedule(place_dur, placed, label="fetch-place")

        self._move(shuttle, slot_pos, at_shelf)

    def _move(self, shuttle: Shuttle, target: Position, then: Callable[[], None]) -> None:
        plan = self.policy.plan_move(shuttle, target, self.sim.now)
        self._travel_times.append(plan.total_seconds)
        self._h_travel.observe(plan.total_seconds)

        def arrived() -> None:
            shuttle.complete_move(
                target,
                plan.base_seconds,
                congestion_seconds=plan.congestion_seconds,
                stop_start_cycles=plan.stop_start_cycles,
            )
            then()

        self.sim.schedule(plan.total_seconds, arrived, label="move")

    # ------------------------------------------------------------------ #
    # Drive service
    # ------------------------------------------------------------------ #

    def _on_customer_arrival(
        self, drive: _DriveSim, platter: str, fetch_started: Optional[float] = None
    ) -> None:
        self._drive_stops_verifying()
        drive.customer_platter = platter
        drive.serving = True
        drive.head_track = int(self.rng.integers(0, max(1, self.config.platter_tracks)))
        switch = (
            drive.model.config.fast_switch_seconds
            if self.config.fast_switching
            else drive.model.config.unmount_seconds + drive.model.config.mount_seconds
        )
        drive.switch_seconds += switch
        mount = drive.model.config.mount_seconds
        drive.read_seconds += mount
        self._mount_counter += 1
        drive.current_mount = self._mount_counter
        if self.tracer is not None:
            now = self.sim.now
            self.tracer.emit(
                now,
                "drive.mount",
                component=f"drive:{drive.drive_id}",
                mount_id=drive.current_mount,
                platter=platter,
                mount_s=mount,
                switch_s=switch,
                shuttle_s=(now - fetch_started) if fetch_started is not None else 0.0,
            )

        def mounted() -> None:
            self._serve_batch(drive, platter)

        self.sim.schedule(switch + mount, mounted, label="mount")

    def _serve_batch(self, drive: _DriveSim, platter: str) -> None:
        batch = self.scheduler.take_batch(platter)
        if not batch:
            self._finish_service(drive, platter)
            return
        pid = self._platter_partition.get(platter)
        if pid is not None:
            self._partition_load[pid] = max(
                0.0, self._partition_load[pid] - sum(r.size_bytes for r in batch)
            )
        if self.config.sort_batch_by_track:
            batch = sorted(batch, key=lambda r: r.track_start)
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now,
                "sched.batch",
                component=f"drive:{drive.drive_id}",
                platter=platter,
                size=len(batch),
                bytes=sum(r.size_bytes for r in batch),
            )
        self._serve_requests(drive, platter, batch, 0)

    def _serve_requests(
        self, drive: _DriveSim, platter: str, batch: List[SimRequest], index: int
    ) -> None:
        if index >= len(batch):
            if not self.config.amortize_batch:
                # Ablation mode: one request per mount — unmount and return
                # the platter even if more requests are queued for it.
                self._finish_service(drive, platter)
                return
            # Re-check for arrivals that queued during this batch.
            self._serve_batch(drive, platter)
            return
        request = batch[index]
        cfg = self.config
        tr = self.tracer
        seek = self._seek_seconds(drive, request.track_start)
        drive.head_track = request.track_start + request.num_tracks
        track_bytes = request.num_tracks * cfg.track_read_bytes
        scan = drive.model.seconds_to_scan(track_bytes)
        duration = seek + scan
        bytes_this_service = track_bytes
        seek_total = seek
        decode_extra = 0.0
        drive.seek_seconds += seek
        escalate = False
        p = cfg.transient_read_error_prob
        if p > 0.0 and float(self.rng.random()) < p:
            # Read-retry escalation ladder. Rung 1: a transient sector
            # error — re-read the tracks in place (another seek + scan).
            self._c_reread.inc()
            request.retries += 1
            request.mark_degraded()
            reread_seek = self._seek_seconds(drive, request.track_start)
            duration += reread_seek + scan
            drive.seek_seconds += reread_seek
            seek_total += reread_seek
            bytes_this_service += track_bytes
            if tr is not None:
                tr.emit(
                    self.sim.now,
                    "retry.reread",
                    request_id=request.request_id,
                    component=f"drive:{drive.drive_id}",
                    extra_s=reread_seek + scan,
                )
            if float(self.rng.random()) < p:
                # Rung 2: spend a deeper LDPC iteration budget on the
                # captured image (decode compute, no extra media read).
                self._c_deep_decode.inc()
                request.retries += 1
                decode_extra = scan * cfg.deep_decode_factor
                duration += decode_extra
                if tr is not None:
                    tr.emit(
                        self.sim.now,
                        "retry.deep_decode",
                        request_id=request.request_id,
                        component=f"drive:{drive.drive_id}",
                        extra_s=decode_extra,
                    )
                if (
                    not request.is_recovery
                    and float(self.rng.random()) < p * cfg.deep_decode_residual
                ):
                    # Rung 3: the tracks are unrecoverable in place —
                    # escalate to cross-platter NC recovery. Recovery
                    # reads themselves never re-escalate (they already
                    # carry the set's redundancy).
                    escalate = True
        drive.read_seconds += duration
        self._c_bytes_read.inc(bytes_this_service)
        if request.is_recovery:
            self._c_recovery_bytes.inc(bytes_this_service)
        if tr is not None:
            tr.emit(
                self.sim.now,
                "drive.read",
                request_id=request.request_id,
                component=f"drive:{drive.drive_id}",
                mount_id=drive.current_mount,
                seek_s=seek_total,
                channel_s=duration - seek_total - decode_extra,
                decode_s=decode_extra,
                bytes=bytes_this_service,
                retries=request.retries,
                escalated=escalate,
            )

        def done() -> None:
            if escalate:
                if tr is not None:
                    tr.emit(
                        self.sim.now,
                        "retry.escalate",
                        request_id=request.request_id,
                        component=f"drive:{drive.drive_id}",
                        platter=platter,
                    )
                if self._fan_out_recovery(request):
                    self._c_escalations.inc()
                else:
                    self._abandon_request(request)
            else:
                self._complete_request(request)
            self._serve_requests(drive, platter, batch, index + 1)

        self.sim.schedule(duration, done, label="read")

    def _finish_service(self, drive: _DriveSim, platter: str) -> None:
        unmount = drive.model.config.unmount_seconds
        switch = (
            drive.model.config.fast_switch_seconds
            if self.config.fast_switching
            else drive.model.config.unmount_seconds + drive.model.config.mount_seconds
        )
        drive.read_seconds += unmount
        drive.switch_seconds += switch
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now,
                "drive.unmount",
                component=f"drive:{drive.drive_id}",
                mount_id=drive.current_mount,
                platter=platter,
                unmount_s=unmount,
                switch_s=switch,
            )
        drive.current_mount = None

        def done() -> None:
            self._drive_resumes_verifying()
            drive.customer_platter = None
            drive.serving = False
            if self.config.policy == "ns":
                # Platters teleport back: slot frees instantly.
                self._end_service(platter)
            else:
                drive.awaiting_return = platter
            self._request_dispatch()

        self.sim.schedule(unmount + switch, done, label="unmount")

    # ------------------------------------------------------------------ #
    # NS baseline dispatch
    # ------------------------------------------------------------------ #

    def _dispatch_ns(self) -> None:
        while True:
            free_drives = [d for d in self.drives if d.customer_slot_free]
            if not free_drives:
                return
            platter = self._pop_candidate(self._global_heap)
            if platter is None:
                return
            drive = free_drives[0]
            self.scheduler.begin_service(platter)
            self._on_customer_arrival(drive, platter)

    # ------------------------------------------------------------------ #
    # Verification queue (Section 3.1)
    # ------------------------------------------------------------------ #

    def submit_verification(self, platter_bytes: float, time: Optional[float] = None) -> None:
        """A freshly written platter joins the verification queue.

        Its full capacity must be read back by the read drives' idle time;
        the completion latency lands in :attr:`verify_latencies`.
        """

        def arrive() -> None:
            self._update_verify_fluid()
            self._verify_cum_demand += platter_bytes
            self._verify_queue.append(
                (self.sim.now, platter_bytes, self._verify_cum_demand)
            )
            if self.tracer is not None:
                self.tracer.emit(
                    self.sim.now,
                    "verify.submit",
                    bytes=platter_bytes,
                    backlog_bytes=self.verify_backlog_bytes,
                )

        if time is None or time <= self.sim.now:
            arrive()
        else:
            self.sim.schedule_at(time, arrive, label="verify-arrival")

    @property
    def verify_backlog_bytes(self) -> float:
        return max(0.0, self._verify_cum_demand - self._verify_drained)

    def _update_verify_fluid(self) -> None:
        """Advance the fluid drain to `now` and pop completed platters."""
        now = self.sim.now
        dt = now - self._last_verify_update
        if dt > 0 and self._verifying_drives > 0:
            rate = self._verifying_drives * self._verify_rate_per_drive
            before = self._verify_drained
            self._verify_drained += rate * dt
            while self._verify_queue and self._verify_queue[0][2] <= self._verify_drained:
                arrival, _bytes, cum_end = self._verify_queue.pop(0)
                # Interpolate the exact completion instant within [last, now].
                completed_at = self._last_verify_update + (cum_end - before) / rate
                self.verify_latencies.append(max(0.0, completed_at - arrival))
        self._last_verify_update = now

    def _drive_stops_verifying(self) -> None:
        self._update_verify_fluid()
        self._verifying_drives = max(0, self._verifying_drives - 1)

    def _drive_resumes_verifying(self) -> None:
        self._update_verify_fluid()
        self._verifying_drives = min(len(self.drives), self._verifying_drives + 1)

    # ------------------------------------------------------------------ #
    # Failure injection (Section 4/6: failures minimize impact)
    # ------------------------------------------------------------------ #

    def schedule_shuttle_failure(
        self, time: float, shuttle_id: int, repair_after: Optional[float] = None
    ) -> None:
        """Fail a shuttle at (or shortly after) ``time``.

        Fail-stop at an operation boundary: if the shuttle is mid-trip, the
        failure is parked in the pending-fault set and fires from the
        dispatch hook when the shuttle next goes idle (event-driven — no
        polling), keeping every in-flight platter protocol consistent.
        Consequences:

        * the shelf the shuttle died on becomes a blast zone — its platters
          turn unavailable and their queued reads re-route through
          cross-platter recovery;
        * the controller reassigns the shuttle's partitions to the nearest
          alive shuttle (detection is reliable, Section 6).

        ``repair_after`` starts a repair clock: the shuttle returns to
        service that many seconds after the failure actually fires
        (transient fault); None means fail-stop forever (permanent).
        """
        if not 0 <= shuttle_id < len(self.shuttles):
            raise IndexError(f"no shuttle {shuttle_id}")

        def fire() -> None:
            shuttle_sim = self.shuttles[shuttle_id]
            if shuttle_sim.shuttle.failed:
                return  # overlapping fault; the active one wins
            if shuttle_sim.busy:
                self._pending_faults.append(("shuttle", shuttle_id, repair_after))
                if self.tracer is not None:
                    self.tracer.emit(
                        self.sim.now,
                        "fault.deferred",
                        component=f"shuttle:{shuttle_id}",
                    )
                return
            self._fail_shuttle(shuttle_id, repair_after=repair_after)

        self.sim.schedule_at(time, fire, label="shuttle-failure")

    def schedule_drive_failure(
        self, time: float, drive_id: int, repair_after: Optional[float] = None
    ) -> None:
        """Fail a read drive at (or shortly after) ``time``.

        Same operation-boundary and repair-clock semantics as
        :meth:`schedule_shuttle_failure`.
        """
        if not 0 <= drive_id < len(self.drives):
            raise IndexError(f"no drive {drive_id}")

        def fire() -> None:
            drive = self.drives[drive_id]
            if drive.failed:
                return
            if drive.occupied:
                self._pending_faults.append(("drive", drive_id, repair_after))
                if self.tracer is not None:
                    self.tracer.emit(
                        self.sim.now,
                        "fault.deferred",
                        component=f"drive:{drive_id}",
                    )
                return
            self._fail_drive(drive_id, repair_after=repair_after)

        self.sim.schedule_at(time, fire, label="drive-failure")

    def schedule_metadata_outage(
        self, time: float, duration: Optional[float] = None
    ) -> None:
        """Take the metadata service down at ``time``.

        Arrivals during the outage back off (capped exponential) until the
        service repairs ``duration`` seconds later; None means the outage
        lasts to the end of the run.
        """

        def repair() -> None:
            if self._metadata_available:
                return
            self._metadata_available = True
            self._close_fault(("metadata", 0))
            waiters, self._metadata_waiters = self._metadata_waiters, []
            for retry in waiters:
                retry()
            self._request_dispatch()

        def fire() -> None:
            if not self._metadata_available:
                return  # overlapping outage; the active one wins
            self._metadata_available = False
            self._c_faults_injected.inc()
            self._active_fault_started[("metadata", 0)] = self.sim.now
            if self.tracer is not None:
                self.tracer.emit(
                    self.sim.now,
                    "metadata.outage",
                    component="metadata",
                    duration=duration if duration is not None else -1.0,
                )
            if duration is not None:
                self.sim.schedule(duration, repair, label="metadata-repair")

        self.sim.schedule_at(time, fire, label="metadata-outage")

    @property
    def metadata_available(self) -> bool:
        return self._metadata_available

    def apply_fault_schedule(self, schedule: "FaultSchedule") -> None:
        """Arm every event of a :class:`repro.faults.FaultSchedule`.

        Transient events carry their repair clock; permanent events never
        return. Call before :meth:`run`.
        """
        from ..faults import ComponentKind

        for event in schedule:
            repair_after = event.duration if event.repairs else None
            if event.component is ComponentKind.SHUTTLE:
                self.schedule_shuttle_failure(
                    event.start, event.target, repair_after=repair_after
                )
            elif event.component is ComponentKind.READ_DRIVE:
                self.schedule_drive_failure(
                    event.start, event.target, repair_after=repair_after
                )
            else:
                self.schedule_metadata_outage(event.start, repair_after)

    def _fail_shuttle(self, shuttle_id: int, repair_after: Optional[float] = None) -> None:
        shuttle_sim = self.shuttles[shuttle_id]
        shuttle = shuttle_sim.shuttle
        shuttle.fail()
        self._c_faults_injected.inc()
        key = ("shuttle", shuttle_id)
        self._active_fault_started[key] = self.sim.now
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now,
                "fault.fire",
                component=f"shuttle:{shuttle_id}",
                permanent=repair_after is None,
            )
        # Blast zone: one shelf of one rack at the death position.
        width = self.layout.config.rack_width_m
        rack = int(shuttle.position.x // width)
        level = shuttle.position.level
        blocked = set()
        for platter, slot in list(self._home_slot.items()):
            if slot.rack == rack and slot.level == level:
                if self.layout.locate(platter) is not None:
                    if self._make_platter_unavailable(platter):
                        blocked.add(platter)
        self._fault_platters[key] = blocked
        # Controller reassigns coverage of this shuttle's partitions.
        self._recompute_partition_cover()
        if repair_after is not None:
            self.sim.schedule(
                repair_after,
                lambda: self._repair_shuttle(shuttle_id),
                label="shuttle-repair",
            )
        self._request_dispatch()

    def _repair_shuttle(self, shuttle_id: int) -> None:
        """Repair clock expired: the shuttle returns to service.

        Its blast zone clears (unless another active failure still covers a
        platter) and the controller hands its partitions back."""
        shuttle_sim = self.shuttles[shuttle_id]
        shuttle = shuttle_sim.shuttle
        if not shuttle.failed:
            return
        key = ("shuttle", shuttle_id)
        shuttle.repair()
        self._close_fault(key)
        blocked = self._fault_platters.pop(key, set())
        still_blocked = set()
        for platters in self._fault_platters.values():
            still_blocked |= platters
        for platter in blocked - still_blocked:
            self.unavailable.discard(platter)
        self._recompute_partition_cover()
        self._request_dispatch()

    def _fail_drive(self, drive_id: int, repair_after: Optional[float] = None) -> None:
        drive = self.drives[drive_id]
        drive.failed = True
        self._c_faults_injected.inc()
        self._active_fault_started[("drive", drive_id)] = self.sim.now
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now,
                "fault.fire",
                component=f"drive:{drive_id}",
                permanent=repair_after is None,
            )
        self._drive_stops_verifying()  # failure gate ensures it was idle
        self._recompute_drive_routing()
        if repair_after is not None:
            self.sim.schedule(
                repair_after,
                lambda: self._repair_drive(drive_id),
                label="drive-repair",
            )
        self._request_dispatch()

    def _repair_drive(self, drive_id: int) -> None:
        """Repair clock expired: the drive rejoins the fleet (and the
        verification pool) and partitions route back to it."""
        drive = self.drives[drive_id]
        if not drive.failed:
            return
        drive.failed = False
        self._close_fault(("drive", drive_id))
        self._drive_resumes_verifying()
        self._recompute_drive_routing()
        self._request_dispatch()

    def _close_fault(self, key: Tuple[str, int]) -> None:
        """Account the downtime of a repaired fault."""
        started = self._active_fault_started.pop(key, self.sim.now)
        downtime = max(0.0, self.sim.now - started)
        self._c_downtime.inc(downtime)
        self._repair_durations.append(downtime)
        self._c_faults_repaired.inc()
        if self.tracer is not None:
            kind, target = key
            self.tracer.emit(
                self.sim.now,
                "metadata.repair" if kind == "metadata" else "fault.repair",
                component="metadata" if kind == "metadata" else f"{kind}:{target}",
                downtime_s=downtime,
            )

    def _recompute_partition_cover(self) -> None:
        """Self-coverage for alive shuttles; orphaned partitions adopt the
        nearest alive shuttle (controller reassignment, Section 6)."""
        if not isinstance(self.policy, PartitionedPolicy):
            return
        owner: Dict[int, _ShuttleSim] = {}
        for shuttle_sim in self.shuttles:
            pid = shuttle_sim.shuttle.partition
            if pid is not None:
                owner[pid] = shuttle_sim
        for pid in self._partition_cover:
            own = owner.get(pid)
            if own is not None and not own.shuttle.failed:
                self._partition_cover[pid] = pid
            else:
                self._partition_cover[pid] = self._nearest_alive_partition(pid)

    def _recompute_drive_routing(self) -> None:
        """Partitions whose native drive is down route to the nearest alive
        drive; routes return home when the native drive repairs."""
        if not isinstance(self.policy, PartitionedPolicy):
            return
        alive = [d for d in self.drives if not d.failed]
        for partition in self.policy.partitions:
            native = partition.drive_id
            if native >= len(self.drives):
                continue  # bay not populated in this configuration
            if not self.drives[native].failed:
                self._drive_override.pop(partition.index, None)
            elif alive:
                nearest = min(
                    alive, key=lambda d: abs(d.position.x - partition.home.x)
                )
                self._drive_override[partition.index] = nearest.drive_id

    def _nearest_alive_partition(self, failed_partition: int) -> int:
        """Partition index of the nearest alive shuttle (by home x/level)."""
        assert isinstance(self.policy, PartitionedPolicy)
        failed_home = self.policy.partitions[failed_partition].home
        alive = [
            s.shuttle
            for s in self.shuttles
            if not s.shuttle.failed and s.shuttle.partition is not None
        ]
        if not alive:
            return failed_partition
        nearest = min(
            alive,
            key=lambda sh: abs(self.policy.partitions[sh.partition].home.x - failed_home.x)
            + 0.5 * abs(self.policy.partitions[sh.partition].home.level - failed_home.level),
        )
        return nearest.partition

    def _make_platter_unavailable(self, platter: str) -> bool:
        """Mark a platter unreachable and re-route its queued reads.

        Returns True if this call made the platter unavailable (so the
        failure that caused it can restore it on repair)."""
        if platter in self.unavailable:
            return False
        if self.scheduler.in_service(platter):
            # Mounted or being fetched: it escaped the blast zone.
            return False
        self.unavailable.add(platter)
        pending = self.scheduler.remove_pending(platter)
        pid = self._platter_partition.get(platter)
        if pid is not None and pending:
            self._partition_load[pid] = max(
                0.0,
                self._partition_load[pid] - sum(r.size_bytes for r in pending),
            )
        for request in pending:
            self._ingest(request)
        return True

    # ------------------------------------------------------------------ #
    # Run + report
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> SimulationReport:
        self.sim.run(until=until, max_events=max_events)
        return self.report()

    def report(self) -> SimulationReport:
        self._update_verify_fluid()
        total = self.sim.now
        per_drive = []
        agg = DriveUtilization()
        bytes_verified = 0.0
        for drive in self.drives:
            verify = max(0.0, total - drive.read_seconds - drive.switch_seconds)
            util = DriveUtilization(
                read_seconds=drive.read_seconds,
                verify_seconds=verify,
                switch_seconds=drive.switch_seconds,
                total_seconds=total,
            )
            per_drive.append(util)
            agg = agg + util
            bytes_verified += verify * drive.model.config.throughput_mbps * 1e6
        congestion_total = sum(s.shuttle.stats.congestion_seconds for s in self.shuttles)
        travel_total = sum(s.shuttle.stats.travel_seconds for s in self.shuttles)
        unobstructed = travel_total - congestion_total
        energy = sum(s.shuttle.stats.energy_joules for s in self.shuttles)
        platter_ops = sum(s.shuttle.stats.platter_operations for s in self.shuttles)
        shuttle_metrics = ShuttleMetrics(
            congestion_overhead=congestion_total / unobstructed if unobstructed > 0 else 0.0,
            energy_per_platter_op=energy / platter_ops if platter_ops else 0.0,
            travel_times=self._travel_times,
            total_conflicts=self.policy.total_conflicts if self.policy else 0,
            steals=getattr(self.policy, "steals", 0),
        )
        measured = [
            r.completion_time
            for r in self.all_requests
            if r.measured and r.done and r.parent is None
        ]
        completed_all = sum(1 for r in self.all_requests if r.done and r.parent is None)
        submitted_all = sum(1 for r in self.all_requests if r.parent is None)
        resilience = self._resilience_metrics(total)
        completions = CompletionStats.from_times(measured)
        # Snapshot headline figures as gauges so a metrics export alone
        # (without report.json) is self-describing.
        m = self.metrics
        m.gauge("simulated_seconds", "Simulated wall time", unit="seconds").set(total)
        m.gauge("requests_submitted", "Top-level requests submitted").set(submitted_all)
        m.gauge("requests_completed", "Top-level requests completed").set(completed_all)
        m.gauge("availability", "Component availability over the run").set(
            resilience.availability
        )
        m.gauge(
            "tail_seconds", "Measured completion-time p99.9", unit="seconds"
        ).set(completions.tail)
        m.gauge("drive_utilization_read", "Aggregate drive read-time fraction").set(
            agg.read_fraction
        )
        m.gauge(
            "verify_backlog_bytes", "Verification backlog at end of run", unit="bytes"
        ).set(self.verify_backlog_bytes)
        m.gauge("congestion_overhead", "Shuttle congestion / unobstructed travel").set(
            shuttle_metrics.congestion_overhead
        )
        m.gauge(
            "energy_per_platter_op", "Shuttle energy per platter operation", unit="joules"
        ).set(shuttle_metrics.energy_per_platter_op)
        qos = None
        if self.config.tenancy is not None:
            qos = QoSMetrics.from_requests(
                self.all_requests,
                self.config.tenancy,
                self.admission.stats_dict() if self.admission else None,
            )
            m.gauge("qos_jain_fairness", "Jain index over per-tenant mean slowdown").set(
                qos.jain_fairness
            )
            m.gauge("qos_deadline_misses", "Measured completions past deadline").set(
                qos.deadline_misses
            )
            m.gauge("qos_admission_rejections", "Reads rejected by ingress quotas").set(
                qos.admission_rejections
            )
        return SimulationReport(
            qos=qos,
            resilience=resilience,
            completions=completions,
            drive_utilization=agg,
            per_drive_utilization=per_drive,
            shuttles=shuttle_metrics,
            requests_submitted=submitted_all,
            requests_completed=completed_all,
            bytes_read=self.bytes_read,
            bytes_verified=bytes_verified,
            seek_seconds=sum(d.seek_seconds for d in self.drives),
            simulated_seconds=total,
        )

    def _resilience_metrics(self, total_seconds: float) -> ResilienceMetrics:
        """Fault-lifecycle accounting over the whole run."""
        # Downtime of closed (repaired) faults plus the open tail of every
        # fault still active at the end of the run.
        downtime = self._c_downtime.value
        for started in self._active_fault_started.values():
            downtime += max(0.0, total_seconds - started)
        num_components = len(self.shuttles) + len(self.drives) + 1  # + metadata
        budget = num_components * total_seconds
        availability = 1.0 - downtime / budget if budget > 0 else 1.0
        mttr = (
            sum(self._repair_durations) / len(self._repair_durations)
            if self._repair_durations
            else 0.0
        )
        degraded = [
            r
            for r in self.all_requests
            if r.parent is None and r.degraded
        ]
        degraded_times = [
            r.completion_time for r in degraded if r.measured and r.done
        ]
        fanout_user_bytes = self._c_fanout_user_bytes.value
        amplification = (
            self.recovery_bytes_read / fanout_user_bytes
            if fanout_user_bytes > 0
            else 0.0
        )
        return ResilienceMetrics(
            faults_injected=self.failures_injected,
            faults_repaired=self.faults_repaired,
            availability=max(0.0, availability),
            mean_time_to_repair=mttr,
            downtime_component_seconds=downtime,
            reread_retries=self.reread_retries,
            deep_decodes=self.deep_decodes,
            recovery_escalations=self.recovery_escalations,
            recovery_bytes_read=self.recovery_bytes_read,
            recovery_read_amplification=amplification,
            metadata_retries=self.metadata_retries,
            requests_lost=self.requests_lost,
            degraded_requests=len(degraded),
            degraded_completions=CompletionStats.from_times(degraded_times),
        )
