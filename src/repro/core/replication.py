"""Replication primitives: statistical replication and replica placement.

Two senses of "replication" live here, both in service of the paper's
durability story:

* **Statistical replication** — a single digital-twin run samples one
  realization of every mechanical duration and placement decision;
  experiment conclusions (Figures 5-9) should rest on replicated runs.
  :func:`replicate` runs the same experiment across seeds and summarizes
  any scalar metric with a mean and a t-distribution confidence interval.
* **Data replication** — the region-level availability argument (Section 8)
  places k replicas of every object in distinct failure domains so no
  single-domain outage can take all copies down.
  :func:`place_across_domains` is the deterministic k-of-n placement
  primitive the fleet layer builds its replica map on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from ..workload.profiles import WorkloadProfile
from ..workload.generator import WorkloadGenerator
from .metrics import SimulationReport
from .sim import LibrarySimulation, SimConfig


@dataclass(frozen=True)
class ReplicatedMetric:
    """Summary of one scalar across replicated runs."""

    values: tuple
    confidence: float

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def half_width(self) -> float:
        """Half-width of the t confidence interval around the mean."""
        if self.n < 2:
            return 0.0
        t = scipy_stats.t.ppf(0.5 + self.confidence / 2, df=self.n - 1)
        return float(t * self.std / np.sqrt(self.n))

    @property
    def interval(self) -> tuple:
        return (self.mean - self.half_width, self.mean + self.half_width)

    def __str__(self) -> str:
        return f"{self.mean:.3g} ± {self.half_width:.2g} (n={self.n})"


def replicate(
    run: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> ReplicatedMetric:
    """Run ``run(seed)`` for each seed; summarize the returned scalar."""
    if not seeds:
        raise ValueError("need at least one seed")
    values = tuple(float(run(seed)) for seed in seeds)
    return ReplicatedMetric(values, confidence)


def place_across_domains(
    object_index: int,
    domains: Sequence[str],
    replicas: int,
) -> Tuple[int, ...]:
    """k-of-n replica placement: member indices for one object.

    ``domains[i]`` names the failure domain of member ``i``. The returned
    tuple holds ``replicas`` member indices, primary first, such that no
    two chosen members share a domain. Placement is a pure function of
    ``object_index``: the primary domain rotates with the object index
    (load balance across the fleet) and replicas take the next distinct
    domains in ring order, so the map is deterministic, needs no stored
    directory, and any router can recompute it.
    """
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    if object_index < 0:
        raise ValueError("object_index must be non-negative")
    # Group members by domain, preserving first-appearance domain order.
    groups: Dict[str, List[int]] = {}
    for member, domain in enumerate(domains):
        groups.setdefault(domain, []).append(member)
    names = list(groups)
    if replicas > len(names):
        raise ValueError(
            f"cannot place {replicas} replicas across {len(names)} domain(s) "
            "without sharing a domain"
        )
    placement: List[int] = []
    first = object_index % len(names)
    for step in range(replicas):
        members = groups[names[(first + step) % len(names)]]
        placement.append(members[object_index % len(members)])
    return tuple(placement)


def replicate_tail_hours(
    profile: WorkloadProfile,
    seeds: Sequence[int],
    rate_factor: float = 0.7,
    interval_hours: float = 1.0,
    confidence: float = 0.95,
    **config_kwargs,
) -> ReplicatedMetric:
    """Replicated tail completion time (hours) for a profile + config."""

    def run(seed: int) -> float:
        generator = WorkloadGenerator(seed=seed)
        trace, start, end = generator.interval_trace(
            profile.mean_rate_per_second * rate_factor,
            interval_hours=interval_hours,
            warmup_hours=interval_hours / 6,
            cooldown_hours=interval_hours / 6,
            size_model=profile.size_model,
            burstiness=profile.burstiness,
            stream=30 + seed,
        )
        settings = dict(config_kwargs)
        settings["seed"] = seed
        simulation = LibrarySimulation(SimConfig(**settings))
        simulation.assign_trace(trace, start, end)
        report = simulation.run()
        return report.completions.tail / 3600.0

    return replicate(run, seeds, confidence)
