"""Metrics collection: completion times, utilization, congestion, power.

The paper's primary metric is the 99.9th-percentile ("tail") completion
time of a read request — the delay between reception and last byte out of
the library — against a 15-hour SLO (Section 7.2). Figure 6 adds drive
utilization (read / verify / switching split); Figure 7 adds congestion
overhead per travel and power per platter operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

#: The archival SLO used throughout Section 7.
SLO_SECONDS = 15 * 3600.0


@dataclass
class CompletionStats:
    """Distribution summary of request completion times (seconds)."""

    count: int
    mean: float
    median: float
    p99: float
    p999: float
    max: float

    @classmethod
    def from_times(cls, times: Sequence[float]) -> "CompletionStats":
        if not len(times):
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(times, dtype=np.float64)
        return cls(
            count=len(arr),
            mean=float(arr.mean()),
            median=float(np.percentile(arr, 50)),
            p99=float(np.percentile(arr, 99)),
            p999=float(np.percentile(arr, 99.9)),
            max=float(arr.max()),
        )

    @property
    def tail(self) -> float:
        """The paper's headline number: 99.9th percentile."""
        return self.p999

    def within_slo(self, slo_seconds: float = SLO_SECONDS) -> bool:
        return self.p999 <= slo_seconds

    @property
    def tail_hours(self) -> float:
        return self.p999 / 3600.0


@dataclass
class DriveUtilization:
    """Figure 6 accounting for one drive or an aggregate."""

    read_seconds: float = 0.0
    verify_seconds: float = 0.0
    switch_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def utilization(self) -> float:
        """(read + verify) / total — fast switching excluded (§7.4)."""
        if self.total_seconds <= 0:
            return 0.0
        return (self.read_seconds + self.verify_seconds) / self.total_seconds

    @property
    def read_fraction(self) -> float:
        return self.read_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def verify_fraction(self) -> float:
        return self.verify_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def switch_fraction(self) -> float:
        return self.switch_seconds / self.total_seconds if self.total_seconds else 0.0

    def __add__(self, other: "DriveUtilization") -> "DriveUtilization":
        return DriveUtilization(
            self.read_seconds + other.read_seconds,
            self.verify_seconds + other.verify_seconds,
            self.switch_seconds + other.switch_seconds,
            self.total_seconds + other.total_seconds,
        )


@dataclass
class ShuttleMetrics:
    """Figure 7 aggregates across a library's shuttles."""

    congestion_overhead: float = 0.0  # congestion time / unobstructed travel time
    energy_per_platter_op: float = 0.0  # joules
    travel_times: List[float] = field(default_factory=list)
    total_conflicts: int = 0
    steals: int = 0

    def tail_travel_seconds(self, percentile: float = 99.9) -> float:
        if not self.travel_times:
            return 0.0
        return float(np.percentile(self.travel_times, percentile))


@dataclass
class ResilienceMetrics:
    """Fault-lifecycle accounting: how the library rode through faults.

    ``availability`` is component-time availability — the fraction of
    (shuttle + drive + metadata) component-seconds spent in service. With
    repair enabled each fault costs ~MTTR of downtime; with repair disabled
    it costs the rest of the run, which is exactly the contrast the chaos
    benchmark sweeps. ``recovery_read_amplification`` is raw bytes read by
    cross-platter NC recovery over the user bytes they recovered (the
    paper's ~16x for I_p = 16 plus framing overhead, Figure 8).
    """

    faults_injected: int = 0
    faults_repaired: int = 0
    availability: float = 1.0
    mean_time_to_repair: float = 0.0
    downtime_component_seconds: float = 0.0
    reread_retries: int = 0
    deep_decodes: int = 0
    recovery_escalations: int = 0
    recovery_bytes_read: float = 0.0
    recovery_read_amplification: float = 0.0
    metadata_retries: int = 0
    requests_lost: int = 0
    degraded_requests: int = 0
    degraded_completions: CompletionStats = field(
        default_factory=lambda: CompletionStats.from_times([])
    )

    def summary(self) -> str:
        degraded_tail = self.degraded_completions.p999 / 3600.0
        return (
            f"faults={self.faults_injected} repaired={self.faults_repaired} "
            f"availability={self.availability * 100:.3f}% "
            f"mttr={self.mean_time_to_repair:.0f}s "
            f"retries(reread/deep/nc)={self.reread_retries}/"
            f"{self.deep_decodes}/{self.recovery_escalations} "
            f"metadata_retries={self.metadata_retries} "
            f"recovery_amp={self.recovery_read_amplification:.1f}x "
            f"degraded={self.degraded_requests} "
            f"(tail {degraded_tail:.2f}h) lost={self.requests_lost}"
        )


@dataclass
class SimulationReport:
    """Everything a single simulator run produces."""

    completions: CompletionStats
    drive_utilization: DriveUtilization
    per_drive_utilization: List[DriveUtilization]
    shuttles: ShuttleMetrics
    requests_submitted: int = 0
    requests_completed: int = 0
    bytes_read: float = 0.0
    bytes_verified: float = 0.0
    seek_seconds: float = 0.0
    simulated_seconds: float = 0.0
    resilience: Optional[ResilienceMetrics] = None

    def summary(self) -> str:
        c = self.completions
        u = self.drive_utilization
        return (
            f"requests={self.requests_completed}/{self.requests_submitted} "
            f"tail={c.tail_hours:.2f}h median={c.median / 60:.1f}min "
            f"util={u.utilization * 100:.1f}% "
            f"(read {u.read_fraction * 100:.1f}% / verify {u.verify_fraction * 100:.1f}%) "
            f"congestion={self.shuttles.congestion_overhead * 100:.1f}% "
            f"energy/op={self.shuttles.energy_per_platter_op:.1f}J"
        )
