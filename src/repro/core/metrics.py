"""Metrics collection: completion times, utilization, congestion, power.

The paper's primary metric is the 99.9th-percentile ("tail") completion
time of a read request — the delay between reception and last byte out of
the library — against a 15-hour SLO (Section 7.2). Figure 6 adds drive
utilization (read / verify / switching split); Figure 7 adds congestion
overhead per travel and power per platter operation.

Two layers live here:

* **primitives + registry** — :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` collected in a :class:`MetricsRegistry` with stable
  JSON and Prometheus text-format export. The simulator accumulates its
  run counters on a registry (no ad-hoc dict accumulation), so every run
  is exportable and diffable;
* **report dataclasses** — the typed summaries one run produces
  (:class:`SimulationReport` and friends), each with a stable-keyed
  ``as_dict()``.

Units: all times are **seconds** of simulation time unless a name says
``hours``; byte quantities are raw **bytes** (not MiB); energies joules.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

#: The archival SLO used throughout Section 7.
SLO_SECONDS = 15 * 3600.0

#: Default histogram bucket bounds for durations (seconds): sub-second
#: mechanics up through the 15 h SLO.
DEFAULT_TIME_BUCKETS = (0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0, 4 * 3600.0, SLO_SECONDS)


@dataclass
class Counter:
    """Monotonically increasing scalar (events, bytes, retries)."""

    name: str
    help: str = ""
    unit: str = ""
    _value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value, "help": self.help, "unit": self.unit}


@dataclass
class Gauge:
    """Point-in-time scalar (availability, backlog, utilization)."""

    name: str
    help: str = ""
    unit: str = ""
    _value: float = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value, "help": self.help, "unit": self.unit}


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bounds`` are upper bucket edges; an implicit ``+Inf`` bucket catches
    the rest. ``observe`` is O(#buckets) with no allocation.
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """(le-label, cumulative count) pairs, ending with ``+Inf``."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((format(bound, "g"), running))
        out.append(("+Inf", self.count))
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "buckets": {label: count for label, count in self.cumulative()},
            "sum": self.sum,
            "count": self.count,
            "help": self.help,
            "unit": self.unit,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of metrics with stable, exportable state.

    ``counter()`` / ``gauge()`` / ``histogram()`` get-or-create by name
    (re-registering with a different type is an error). Export formats:

    * :meth:`as_dict` / :meth:`to_json` — stable-keyed (sorted) JSON, the
      artifact format every run dumps;
    * :meth:`to_prometheus` — the Prometheus text exposition format.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind: type, factory) -> Metric:
        full = f"{self.prefix}{name}"
        existing = self._metrics.get(full)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {full!r} already registered as {type(existing).__name__}"
                )
            return existing
        metric = factory(full)
        self._metrics[full] = metric
        return metric

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda n: Counter(n, help, unit))

    def gauge(self, name: str, help: str = "", unit: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda n: Gauge(n, help, unit))

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda n: Histogram(n, help, unit, buckets)
        )

    def __contains__(self, name: str) -> bool:
        return f"{self.prefix}{name}" in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def value(self, name: str) -> float:
        """Scalar value of a counter/gauge (full or prefix-relative name)."""
        metric = self._metrics.get(name) or self._metrics[f"{self.prefix}{name}"]
        if isinstance(metric, Histogram):
            raise TypeError(f"{name} is a histogram; read .sum/.count instead")
        return metric.value

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed (sorted by metric name) snapshot of every metric."""
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format, metrics sorted by name."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_prom_number(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_prom_number(metric.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                for label, cumulative in metric.cumulative():
                    lines.append(f'{name}_bucket{{le="{label}"}} {cumulative}')
                lines.append(f"{name}_sum {_prom_number(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
        return "\n".join(lines) + "\n"


def _prom_number(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass
class CompletionStats:
    """Distribution summary of request completion times (seconds)."""

    count: int
    mean: float
    median: float
    p99: float
    p999: float
    max: float

    @classmethod
    def from_times(cls, times: Sequence[float]) -> "CompletionStats":
        if not len(times):
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(times, dtype=np.float64)
        return cls(
            count=len(arr),
            mean=float(arr.mean()),
            median=float(np.percentile(arr, 50)),
            p99=float(np.percentile(arr, 99)),
            p999=float(np.percentile(arr, 99.9)),
            max=float(arr.max()),
        )

    @property
    def tail(self) -> float:
        """The paper's headline number: 99.9th percentile."""
        return self.p999

    def within_slo(self, slo_seconds: float = SLO_SECONDS) -> bool:
        return self.p999 <= slo_seconds

    @property
    def tail_hours(self) -> float:
        return self.p999 / 3600.0

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed snapshot (all times seconds)."""
        return {
            "count": self.count,
            "max": self.max,
            "mean": self.mean,
            "median": self.median,
            "p99": self.p99,
            "p999": self.p999,
        }


@dataclass
class DriveUtilization:
    """Figure 6 accounting for one drive or an aggregate."""

    read_seconds: float = 0.0
    verify_seconds: float = 0.0
    switch_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def utilization(self) -> float:
        """(read + verify) / total — fast switching excluded (§7.4)."""
        if self.total_seconds <= 0:
            return 0.0
        return (self.read_seconds + self.verify_seconds) / self.total_seconds

    @property
    def read_fraction(self) -> float:
        return self.read_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def verify_fraction(self) -> float:
        return self.verify_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def switch_fraction(self) -> float:
        return self.switch_seconds / self.total_seconds if self.total_seconds else 0.0

    def __add__(self, other: "DriveUtilization") -> "DriveUtilization":
        return DriveUtilization(
            self.read_seconds + other.read_seconds,
            self.verify_seconds + other.verify_seconds,
            self.switch_seconds + other.switch_seconds,
            self.total_seconds + other.total_seconds,
        )

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed snapshot (seconds + derived fractions)."""
        return {
            "read_seconds": self.read_seconds,
            "switch_seconds": self.switch_seconds,
            "total_seconds": self.total_seconds,
            "utilization": self.utilization,
            "verify_seconds": self.verify_seconds,
        }


@dataclass
class ShuttleMetrics:
    """Figure 7 aggregates across a library's shuttles."""

    congestion_overhead: float = 0.0  # congestion time / unobstructed travel time
    energy_per_platter_op: float = 0.0  # joules
    travel_times: List[float] = field(default_factory=list)
    total_conflicts: int = 0
    steals: int = 0

    def tail_travel_seconds(self, percentile: float = 99.9) -> float:
        if not self.travel_times:
            return 0.0
        return float(np.percentile(self.travel_times, percentile))

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed snapshot (travel distribution summarized, not listed)."""
        return {
            "congestion_overhead": self.congestion_overhead,
            "energy_per_platter_op": self.energy_per_platter_op,
            "steals": self.steals,
            "tail_travel_seconds": self.tail_travel_seconds(),
            "total_conflicts": self.total_conflicts,
            "travels": len(self.travel_times),
        }


@dataclass
class ResilienceMetrics:
    """Fault-lifecycle accounting: how the library rode through faults.

    ``availability`` is component-time availability — the fraction of
    (shuttle + drive + metadata) component-seconds spent in service. With
    repair enabled each fault costs ~MTTR of downtime; with repair disabled
    it costs the rest of the run, which is exactly the contrast the chaos
    benchmark sweeps. ``recovery_read_amplification`` is raw bytes read by
    cross-platter NC recovery over the user bytes they recovered (the
    paper's ~16x for I_p = 16 plus framing overhead, Figure 8).
    """

    faults_injected: int = 0
    faults_repaired: int = 0
    availability: float = 1.0
    mean_time_to_repair: float = 0.0
    downtime_component_seconds: float = 0.0
    reread_retries: int = 0
    deep_decodes: int = 0
    recovery_escalations: int = 0
    recovery_bytes_read: float = 0.0
    recovery_read_amplification: float = 0.0
    metadata_retries: int = 0
    requests_lost: int = 0
    degraded_requests: int = 0
    degraded_completions: CompletionStats = field(
        default_factory=lambda: CompletionStats.from_times([])
    )

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed snapshot: fixed schema, alphabetical keys.

        This is the contract the ``chaos --json`` output keeps between
        runs and versions — consumers can diff two runs key by key.
        """
        return {
            "availability": self.availability,
            "deep_decodes": self.deep_decodes,
            "degraded_completions": self.degraded_completions.as_dict(),
            "degraded_requests": self.degraded_requests,
            "downtime_component_seconds": self.downtime_component_seconds,
            "faults_injected": self.faults_injected,
            "faults_repaired": self.faults_repaired,
            "mean_time_to_repair": self.mean_time_to_repair,
            "metadata_retries": self.metadata_retries,
            "recovery_bytes_read": self.recovery_bytes_read,
            "recovery_escalations": self.recovery_escalations,
            "recovery_read_amplification": self.recovery_read_amplification,
            "requests_lost": self.requests_lost,
            "reread_retries": self.reread_retries,
        }

    def summary(self) -> str:
        degraded_tail = self.degraded_completions.p999 / 3600.0
        return (
            f"faults={self.faults_injected} repaired={self.faults_repaired} "
            f"availability={self.availability * 100:.3f}% "
            f"mttr={self.mean_time_to_repair:.0f}s "
            f"retries(reread/deep/nc)={self.reread_retries}/"
            f"{self.deep_decodes}/{self.recovery_escalations} "
            f"metadata_retries={self.metadata_retries} "
            f"recovery_amp={self.recovery_read_amplification:.1f}x "
            f"degraded={self.degraded_requests} "
            f"(tail {degraded_tail:.2f}h) lost={self.requests_lost}"
        )


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n · Σx²), in (0, 1].

    1.0 means perfectly equal allocation; 1/n means one participant got
    everything. Degenerate inputs (empty, or all zero) score 1.0 — nothing
    was allocated unfairly.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 1.0
    denom = float(arr.size * (arr * arr).sum())
    if denom == 0.0:
        return 1.0
    total = float(arr.sum())
    return total * total / denom


@dataclass
class TenantQoS:
    """One tenant's service outcome over a run.

    ``mean_slowdown`` is the tenant's mean *deadline-normalized* latency
    (completion time over its class's deadline target) — the quantity the
    Jain fairness index is computed over. Raw-latency fairness would favor
    FIFO (which equalizes waiting, not urgency); normalized slowdown is
    what a deadline-aware policy equalizes across classes.
    """

    tenant: str
    slo_class: str
    completions: CompletionStats
    slo_attainment: float = 1.0  # fraction completed within class deadline
    deadline_misses: int = 0
    mean_slowdown: float = 0.0
    degraded_requests: int = 0
    admitted: int = 0
    rejected: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed snapshot for the report's per-tenant block."""
        return {
            "admitted": self.admitted,
            "completions": self.completions.as_dict(),
            "deadline_misses": self.deadline_misses,
            "degraded_requests": self.degraded_requests,
            "mean_slowdown": self.mean_slowdown,
            "rejected": self.rejected,
            "slo_attainment": self.slo_attainment,
            "slo_class": self.slo_class,
        }


@dataclass
class ClassQoS:
    """Aggregate service outcome of one SLO class.

    Carries the degraded-mode split (count + completion distribution) so
    PR 1's resilience metrics can be read per class in ``chaos --json``
    and exported artifacts.
    """

    slo_class: str
    deadline_seconds: float
    completions: CompletionStats
    slo_attainment: float = 1.0
    deadline_misses: int = 0
    tenants: int = 0
    degraded_requests: int = 0
    degraded_completions: CompletionStats = field(
        default_factory=lambda: CompletionStats.from_times([])
    )

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed snapshot for the report's per-class block."""
        return {
            "completions": self.completions.as_dict(),
            "deadline_misses": self.deadline_misses,
            "deadline_seconds": self.deadline_seconds,
            "degraded_completions": self.degraded_completions.as_dict(),
            "degraded_requests": self.degraded_requests,
            "slo_attainment": self.slo_attainment,
            "tenants": self.tenants,
        }


@dataclass
class QoSMetrics:
    """The multi-tenant QoS block of a run: who got what service.

    Assembled by :meth:`from_requests` from the simulator's completed
    request set plus the admission controller's books. ``jain_fairness``
    is Jain's index over per-tenant mean slowdown (see
    :class:`TenantQoS`); ``admission_rejections`` totals rejects across
    tenants.
    """

    per_tenant: Dict[str, TenantQoS] = field(default_factory=dict)
    per_class: Dict[str, ClassQoS] = field(default_factory=dict)
    jain_fairness: float = 1.0
    deadline_misses: int = 0
    admission_rejections: int = 0

    @classmethod
    def from_requests(
        cls,
        requests: Iterable[Any],
        registry: Any,
        admission_stats: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> "QoSMetrics":
        """Aggregate per-tenant / per-class QoS from completed requests.

        ``requests`` are simulator requests (top-level, measured ones are
        counted); ``registry`` is a :class:`repro.tenancy.model.
        TenantRegistry` (duck-typed: needs ``class_of``);
        ``admission_stats`` is :meth:`repro.tenancy.admission.
        AdmissionController.stats_dict` output.
        """
        by_tenant: Dict[str, List[Any]] = {}
        for request in requests:
            if request.parent is not None or not request.measured:
                continue
            if request.completion is None:
                continue
            by_tenant.setdefault(request.tenant, []).append(request)

        tenant_names = set(by_tenant)
        if admission_stats:
            tenant_names |= set(admission_stats)

        per_tenant: Dict[str, TenantQoS] = {}
        class_rows: Dict[str, Dict[str, List[float]]] = {}
        slowdowns: List[float] = []
        total_misses = 0
        for tenant in sorted(tenant_names):
            slo = registry.class_of(tenant)
            done = by_tenant.get(tenant, [])
            times = [r.completion_time for r in done]
            target = slo.deadline_seconds
            norm = [t / target for t in times]
            misses = sum(1 for r in done if r.completion > (r.deadline or (r.arrival + target)))
            degraded = sum(1 for r in done if r.degraded)
            stats = (admission_stats or {}).get(tenant, {})
            per_tenant[tenant] = TenantQoS(
                tenant=tenant,
                slo_class=slo.name,
                completions=CompletionStats.from_times(times),
                slo_attainment=(
                    1.0 if not times else 1.0 - misses / len(times)
                ),
                deadline_misses=misses,
                mean_slowdown=float(np.mean(norm)) if norm else 0.0,
                degraded_requests=degraded,
                admitted=int(stats.get("admitted", len(done))),
                rejected=int(stats.get("rejected", 0)),
            )
            total_misses += misses
            if norm:
                slowdowns.append(float(np.mean(norm)))
            row = class_rows.setdefault(
                slo.name,
                {"times": [], "degraded": [], "tenants": [], "target": [target]},
            )
            row["times"].extend(times)
            row["degraded"].extend(r.completion_time for r in done if r.degraded)
            row["tenants"].append(1.0)

        per_class: Dict[str, ClassQoS] = {}
        for name in sorted(class_rows):
            row = class_rows[name]
            target = row["target"][0]
            times = row["times"]
            misses = sum(1 for t in times if t > target)
            per_class[name] = ClassQoS(
                slo_class=name,
                deadline_seconds=target,
                completions=CompletionStats.from_times(times),
                slo_attainment=(1.0 if not times else 1.0 - misses / len(times)),
                deadline_misses=misses,
                tenants=len(row["tenants"]),
                degraded_requests=len(row["degraded"]),
                degraded_completions=CompletionStats.from_times(row["degraded"]),
            )

        rejections = sum(
            int(stats.get("rejected", 0))
            for stats in (admission_stats or {}).values()
        )
        return cls(
            per_tenant=per_tenant,
            per_class=per_class,
            jain_fairness=jain_index(slowdowns),
            deadline_misses=total_misses,
            admission_rejections=rejections,
        )

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed snapshot: the per-tenant breakdown block."""
        return {
            "admission_rejections": self.admission_rejections,
            "deadline_misses": self.deadline_misses,
            "jain_fairness": self.jain_fairness,
            "per_class": {
                name: self.per_class[name].as_dict()
                for name in sorted(self.per_class)
            },
            "per_tenant": {
                name: self.per_tenant[name].as_dict()
                for name in sorted(self.per_tenant)
            },
        }

    def summary(self) -> str:
        """One-line operator view of the QoS block."""
        parts = []
        for name in sorted(self.per_class):
            row = self.per_class[name]
            parts.append(
                f"{name}: p99={row.completions.p99 / 3600:.2f}h "
                f"slo={row.slo_attainment * 100:.1f}%"
            )
        return (
            f"jain={self.jain_fairness:.3f} misses={self.deadline_misses} "
            f"rejected={self.admission_rejections} | " + " | ".join(parts)
        )


@dataclass
class FleetMetrics:
    """Graceful-degradation accounting for a multi-library fleet run.

    ``read_availability`` is the fleet's headline number: the fraction of
    submitted reads that some replica served before the coordinator's
    retry budget ran out. ``served_degraded`` counts reads that had to be
    served from a non-primary replica (the paper's region-level durability
    argument made visible); ``replication_lost`` counts reads for which
    *every* replica's domain was down through the whole retry ladder —
    exactly the objects a single-library deployment silently loses.
    """

    libraries: int = 1
    replicas: int = 1
    requests_submitted: int = 0
    requests_served: int = 0
    served_degraded: int = 0
    failovers: int = 0
    failover_seconds: float = 0.0
    hedges_issued: int = 0
    hedge_wins: int = 0
    replication_lost: int = 0
    domain_outages: int = 0

    @property
    def read_availability(self) -> float:
        """Fraction of submitted reads served by some replica."""
        if self.requests_submitted <= 0:
            return 1.0
        return self.requests_served / self.requests_submitted

    @property
    def mean_failover_seconds(self) -> float:
        """Mean added latency per failover (detection + backoff)."""
        if self.failovers <= 0:
            return 0.0
        return self.failover_seconds / self.failovers

    @property
    def hedge_win_rate(self) -> float:
        """Fraction of issued hedges whose clone beat the primary."""
        if self.hedges_issued <= 0:
            return 0.0
        return self.hedge_wins / self.hedges_issued

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed snapshot: fixed schema, alphabetical keys."""
        return {
            "domain_outages": self.domain_outages,
            "failover_seconds": self.failover_seconds,
            "failovers": self.failovers,
            "hedge_win_rate": self.hedge_win_rate,
            "hedge_wins": self.hedge_wins,
            "hedges_issued": self.hedges_issued,
            "libraries": self.libraries,
            "mean_failover_seconds": self.mean_failover_seconds,
            "read_availability": self.read_availability,
            "replicas": self.replicas,
            "replication_lost": self.replication_lost,
            "requests_served": self.requests_served,
            "requests_submitted": self.requests_submitted,
            "served_degraded": self.served_degraded,
        }

    def publish(self, registry: "MetricsRegistry") -> None:
        """Mirror the fleet block onto a registry for Prometheus export."""
        pairs = [
            ("requests_submitted_total", self.requests_submitted,
             "reads submitted to the fleet coordinator"),
            ("requests_served_total", self.requests_served,
             "reads served by some replica"),
            ("served_degraded_total", self.served_degraded,
             "reads served from a non-primary replica"),
            ("failovers_total", self.failovers,
             "reads rerouted around a down member"),
            ("failover_seconds_total", self.failover_seconds,
             "added latency from failure detection and backoff"),
            ("hedges_issued_total", self.hedges_issued,
             "hedge clones sent to a second replica"),
            ("hedge_wins_total", self.hedge_wins,
             "hedge clones that beat the primary"),
            ("replication_lost_total", self.replication_lost,
             "reads with every replica down through the retry budget"),
            ("domain_outages_total", self.domain_outages,
             "domain-scoped outages fired by the fleet schedule"),
        ]
        for name, value, help_text in pairs:
            registry.counter(name, help_text).inc(float(value))
        registry.gauge(
            "read_availability", "fraction of submitted reads served"
        ).set(self.read_availability)
        registry.gauge(
            "hedge_win_rate", "fraction of hedges whose clone won"
        ).set(self.hedge_win_rate)
        registry.gauge("libraries", "member libraries").set(self.libraries)
        registry.gauge("replicas", "replicas per object").set(self.replicas)

    def summary(self) -> str:
        """One-line operator view of the fleet block."""
        return (
            f"availability={self.read_availability * 100:.3f}% "
            f"served={self.requests_served}/{self.requests_submitted} "
            f"degraded={self.served_degraded} "
            f"failovers={self.failovers} "
            f"(+{self.mean_failover_seconds:.1f}s each) "
            f"hedges={self.hedge_wins}/{self.hedges_issued} won "
            f"lost={self.replication_lost} outages={self.domain_outages}"
        )


@dataclass
class SimulationReport:
    """Everything a single simulator run produces."""

    completions: CompletionStats
    drive_utilization: DriveUtilization
    per_drive_utilization: List[DriveUtilization]
    shuttles: ShuttleMetrics
    requests_submitted: int = 0
    requests_completed: int = 0
    bytes_read: float = 0.0
    bytes_verified: float = 0.0
    seek_seconds: float = 0.0
    simulated_seconds: float = 0.0
    resilience: Optional[ResilienceMetrics] = None
    qos: Optional[QoSMetrics] = None

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed snapshot of the whole report (per-drive rows omitted)."""
        return {
            "bytes_read": self.bytes_read,
            "bytes_verified": self.bytes_verified,
            "completions": self.completions.as_dict(),
            "drive_utilization": self.drive_utilization.as_dict(),
            "qos": self.qos.as_dict() if self.qos else None,
            "requests_completed": self.requests_completed,
            "requests_submitted": self.requests_submitted,
            "resilience": self.resilience.as_dict() if self.resilience else None,
            "seek_seconds": self.seek_seconds,
            "shuttles": self.shuttles.as_dict(),
            "simulated_seconds": self.simulated_seconds,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def summary(self) -> str:
        c = self.completions
        u = self.drive_utilization
        return (
            f"requests={self.requests_completed}/{self.requests_submitted} "
            f"tail={c.tail_hours:.2f}h median={c.median / 60:.1f}min "
            f"util={u.utilization * 100:.1f}% "
            f"(read {u.read_fraction * 100:.1f}% / verify {u.verify_fraction * 100:.1f}%) "
            f"congestion={self.shuttles.congestion_overhead * 100:.1f}% "
            f"energy/op={self.shuttles.energy_per_platter_op:.1f}J"
        )
