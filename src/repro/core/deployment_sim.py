"""Multi-library deployment simulation (Section 6).

"When placing platters from the same platter-set in a multi-library
deployment, we spread them out within and across libraries as much as
possible ... because we assign files that we expect to read together to the
same platter-set, spreading them across libraries leads to better
load-balancing and higher utilization of libraries at read-time."

:class:`DeploymentSimulation` runs N independent :class:`LibrarySimulation`
instances (libraries share no drives or shuttles) and routes a read trace
to them under one of two placement strategies:

* ``spread`` — platter-sets are striped across libraries, so correlated
  requests (files read together) fan out over all libraries;
* ``packed`` — each platter-set lives wholly inside one library, so a
  correlated burst lands on a single library.

The paper's claim falls out as the tail-completion gap between the two
under account-correlated traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workload.traces import ReadRequest, ReadTrace
from .metrics import CompletionStats, SimulationReport
from .sim import LibrarySimulation, SimConfig


@dataclass(frozen=True)
class DeploymentConfig:
    """A deployment of independent libraries."""

    num_libraries: int = 3
    library: SimConfig = field(default_factory=SimConfig)
    placement: str = "spread"  # "spread" | "packed"

    def __post_init__(self) -> None:
        if self.num_libraries < 1:
            raise ValueError("need at least one library")
        if self.placement not in ("spread", "packed"):
            raise ValueError(f"unknown placement {self.placement!r}")


@dataclass
class DeploymentReport:
    """Aggregate + per-library results."""

    completions: CompletionStats
    per_library: List[SimulationReport]

    @property
    def library_load_imbalance(self) -> float:
        """max/mean requests served across libraries (1.0 = perfect)."""
        counts = [r.requests_completed for r in self.per_library]
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean


class DeploymentSimulation:
    """N libraries served as one archival deployment."""

    def __init__(self, config: Optional[DeploymentConfig] = None):
        self.config = config or DeploymentConfig()
        cfg = self.config
        self.libraries = [
            LibrarySimulation(replace(cfg.library, seed=cfg.library.seed + i))
            for i in range(cfg.num_libraries)
        ]
        self.rng = np.random.default_rng(cfg.library.seed)

    def route_trace(
        self,
        trace: ReadTrace,
        measure_start: float,
        measure_end: float,
        correlation_groups: int = 50,
        group_skew: float = 1.5,
    ) -> None:
        """Split the trace across libraries under the placement strategy.

        Requests are clustered into ``correlation_groups`` read-together
        groups (platter-sets); group popularity is Zipf(``group_skew``), so
        hot groups exist — exactly the correlated traffic the paper's
        spreading argument is about. Under ``spread`` a group's requests
        stripe round-robin over libraries; under ``packed`` each group maps
        to one library.
        """
        cfg = self.config
        per_library: List[List[ReadRequest]] = [[] for _ in self.libraries]
        counters: Dict[int, int] = {}
        ranks = np.arange(1, correlation_groups + 1, dtype=np.float64)
        weights = ranks**-group_skew
        weights /= weights.sum()
        for request in trace:
            group = int(self.rng.choice(correlation_groups, p=weights))
            if cfg.placement == "packed":
                library = group % cfg.num_libraries
            else:  # spread: stripe the group's members over libraries
                position = counters.get(group, 0)
                counters[group] = position + 1
                library = (group + position) % cfg.num_libraries
            per_library[library].append(request)
        for library, requests in zip(self.libraries, per_library):
            library.assign_trace(ReadTrace(requests), measure_start, measure_end)

    def run(self) -> DeploymentReport:
        reports = [library.run() for library in self.libraries]
        times: List[float] = []
        for library in self.libraries:
            times.extend(
                r.completion_time for r in library.kernel.measured_completed()
            )
        return DeploymentReport(
            completions=CompletionStats.from_times(times),
            per_library=reports,
        )
