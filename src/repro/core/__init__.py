"""The core of the reproduction: the digital-twin simulator and controller.

Contains the discrete event engine, the request scheduler and traffic
management policies of Section 4.1, the full-system library simulation of
Section 7, and the metrics it reports.
"""

from .events import Event, Process, Resource, Simulation, SimulationError, drain
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    SLO_SECONDS,
    CompletionStats,
    Counter,
    DriveUtilization,
    Gauge,
    Histogram,
    MetricsRegistry,
    ResilienceMetrics,
    ShuttleMetrics,
    SimulationReport,
)
from .deployment_sim import DeploymentConfig, DeploymentReport, DeploymentSimulation
from .end_to_end import EndToEndReport, compose_with_decode
from .replication import ReplicatedMetric, replicate, replicate_tail_hours
from .requests import SimRequest
from .scheduler import RequestScheduler
from .tape_baseline import TapeConfig, TapeLibrarySimulation, TapeReport
from .sim import LibrarySimulation, SimConfig, SimContext, SimKernel
from .traffic import (
    Partition,
    PartitionedPolicy,
    ReservationTable,
    ShortestPathsPolicy,
    TrafficPolicy,
    TripPlan,
)

__all__ = [
    "Event",
    "Process",
    "Resource",
    "Simulation",
    "SimulationError",
    "drain",
    "DEFAULT_TIME_BUCKETS",
    "SLO_SECONDS",
    "CompletionStats",
    "Counter",
    "DriveUtilization",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ResilienceMetrics",
    "ShuttleMetrics",
    "SimulationReport",
    "DeploymentConfig",
    "EndToEndReport",
    "compose_with_decode",
    "DeploymentReport",
    "DeploymentSimulation",
    "ReplicatedMetric",
    "replicate",
    "replicate_tail_hours",
    "SimRequest",
    "RequestScheduler",
    "TapeConfig",
    "TapeLibrarySimulation",
    "TapeReport",
    "LibrarySimulation",
    "SimConfig",
    "SimContext",
    "SimKernel",
    "Partition",
    "PartitionedPolicy",
    "ReservationTable",
    "ShortestPathsPolicy",
    "TrafficPolicy",
    "TripPlan",
]
