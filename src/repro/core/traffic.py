"""Traffic management: partitioned (Silica), shortest-paths (SP), no-shuttles (NS).

Section 4.1: the traffic manager ensures shuttle motions do not conflict on
shared rails. Silica's policy "splits the storage racks and read drives in
the panel into n logically partitioned rectangular segments, where n is the
number of active shuttles ... Under normal operation, shuttles do not move
outside of their logical partition, which eliminates congestion at the read
drives. Congestion can occur at the boundaries between logical partitions
and is resolved by a localized conflict resolution mechanism prioritizing
the shuttle with the highest identifier." A work-stealing scheme lets
shuttles from lightly loaded partitions fetch from overloaded ones when the
load difference exceeds a threshold.

The evaluation baselines (Section 7.2):

* **SP (Shortest Paths)** — no partitioning; any shuttle moves anywhere via
  shortest paths, so conflicts grow with the number of shuttles.
* **NS (No Shuttles)** — infinitely fast platter delivery; a lower bound on
  shuttle overhead (implemented in the simulator by skipping travel).

Congestion is modeled with space-time reservations: each move reserves its
swept box (x-interval x level-interval x time-interval) on the panel; a
planned move that intersects another shuttle's reservation is a conflict,
resolved by shuttle-id priority — the yielding shuttle stops to give way,
paying a delay and a stop/start energy cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..library.layout import DriveBay, LibraryLayout, Position, SlotId
from ..library.shuttle import Shuttle


@dataclass
class TripPlan:
    """Outcome of planning one shuttle move."""

    base_seconds: float  # unobstructed travel time (motion model sample)
    congestion_seconds: float  # extra time stopped to give way
    stop_start_cycles: int  # congestion-induced accel/decel cycles

    @property
    def total_seconds(self) -> float:
        return self.base_seconds + self.congestion_seconds


@dataclass
class _Reservation:
    """A shuttle's claimed space-time corridor in the reservation table."""

    shuttle_id: int
    t0: float
    t1: float
    x0: float
    x1: float
    lv0: int
    lv1: int
    #: Global insertion sequence — restores table-wide insertion order
    #: when a query collects hits from more than one level band.
    seq: int = 0


class ReservationTable:
    """Space-time occupancy of the panel for conflict detection.

    Reservations are bucketed by shelf-level band (:data:`BAND_LEVELS`
    levels per band): shuttles on disjoint level bands use different
    rails and can never conflict, so a query only scans the buckets its
    level interval touches — a handful of rows instead of the whole
    table. A corridor spanning several bands is inserted into each; a
    multi-band query deduplicates on the global insertion sequence and
    re-sorts hits by it, so the hit list is byte-identical (contents and
    order) with a single flat insertion-ordered scan.
    """

    #: Lateral clearance (m): shuttles closer than this on overlapping rails
    #: during overlapping times conflict.
    CLEARANCE_M = 0.25

    #: Shelf levels per bucket. Partitioned shuttles rarely leave their
    #: level band, so most queries and insertions touch one bucket.
    BAND_LEVELS = 4

    #: Amortized-prune floor: :meth:`maybe_prune` compacts a bucket only
    #: once it holds this many rows (then not until it doubles again).
    PRUNE_FLOOR = 32

    def __init__(self) -> None:
        self._bands: Dict[int, List[_Reservation]] = {}
        self._prune_at: Dict[int, int] = {}
        self._seq = 0

    def conflicts(
        self, shuttle_id: int, t0: float, t1: float, x0: float, x1: float, lv0: int, lv1: int
    ) -> List[_Reservation]:
        """Other shuttles' reservations intersecting the queried corridor.

        A reservation conflicts when its time interval overlaps (open),
        its x-extent comes within :data:`CLEARANCE_M`, and its level band
        intersects (closed). Hits return in insertion order.
        """
        band = self.BAND_LEVELS
        b0 = lv0 // band
        b1 = lv1 // band
        c = self.CLEARANCE_M
        bands = self._bands
        out: List[_Reservation] = []
        for b in range(b0, b1 + 1):
            rows = bands.get(b)
            if not rows:
                continue
            for r in rows:
                if r.shuttle_id == shuttle_id:
                    continue
                if r.t1 <= t0 or r.t0 >= t1:
                    continue
                if r.x1 + c <= x0 or r.x0 - c >= x1:
                    continue
                if r.lv1 < lv0 or r.lv0 > lv1:
                    continue
                out.append(r)
        if b1 > b0 and len(out) > 1:
            # Cross-band query: drop duplicate hits (a corridor lives in
            # every band it spans) and restore global insertion order.
            seen = set()
            unique = []
            for r in out:
                if r.seq not in seen:
                    seen.add(r.seq)
                    unique.append(r)
            unique.sort(key=lambda r: r.seq)
            out = unique
        return out

    def reserve(
        self, shuttle_id: int, t0: float, t1: float, x0: float, x1: float, lv0: int, lv1: int
    ) -> None:
        """Claim a space-time corridor."""
        r = _Reservation(shuttle_id, t0, t1, x0, x1, lv0, lv1, self._seq)
        self._seq += 1
        band = self.BAND_LEVELS
        bands = self._bands
        for b in range(lv0 // band, lv1 // band + 1):
            rows = bands.get(b)
            if rows is None:
                rows = bands[b] = []
            rows.append(r)

    def prune(self, now: float) -> None:
        """Drop every reservation whose corridor ended at or before ``now``."""
        for b, rows in self._bands.items():
            live = [r for r in rows if r.t1 > now]
            if len(live) != len(rows):
                self._bands[b] = live

    def maybe_prune(self, now: float) -> None:
        """Amortized :meth:`prune` for the per-move hot path.

        Skipping a prune never changes behavior: the sim clock is
        monotonic, so an expired corridor (``t1 <= now``) can never pass a
        later query's open time-overlap test — compaction only reclaims
        memory. Each bucket compacts when it hits the floor, then not
        again until it doubles past what survived (O(1) amortized).
        """
        floor = self.PRUNE_FLOOR
        thresholds = self._prune_at
        for b, rows in self._bands.items():
            if len(rows) >= thresholds.get(b, floor):
                live = [r for r in rows if r.t1 > now]
                self._bands[b] = live
                thresholds[b] = max(floor, 2 * len(live))


@dataclass(frozen=True)
class Partition:
    """One logical rectangular segment of the panel.

    A partition is a 2D tile: a band of shelf levels crossed with an
    x-interval. Tiles at different levels use different rails, so shuttles
    in different bands never conflict; same-level tiles only meet at their
    x-boundaries (the "rare" boundary congestion of Section 4.1).
    """

    index: int
    x_lo: float
    x_hi: float
    level_lo: int
    level_hi: int  # inclusive
    drive_id: int  # the read drive (slot) serving this partition
    home: Position

    def contains(self, x: float, level: int) -> bool:
        return self.x_lo <= x < self.x_hi and self.level_lo <= level <= self.level_hi


class TrafficPolicy:
    """Base: shared congestion machinery; subclasses define access rules."""

    name = "base"

    def __init__(
        self,
        layout: LibraryLayout,
        shuttles: Sequence[Shuttle],
        rng: np.random.Generator,
        drive_bays: Optional[Sequence["DriveBay"]] = None,
    ):
        self.layout = layout
        self.shuttles = list(shuttles)
        self.rng = rng
        #: The drive bays actually populated with drives. A run with fewer
        #: drives than the layout has bays (``SimConfig.num_drives`` below
        #: the rack capacity) truncates the fleet, and routing decisions —
        #: partition→drive assignment, SP's nearest-free-drive scan — must
        #: only ever name drives that exist, or the work parked on them
        #: can never be served.
        self.drive_bays: List["DriveBay"] = (
            list(drive_bays) if drive_bays is not None else list(layout.drives)
        )
        self.reservations = ReservationTable()
        self.total_conflicts = 0
        #: penalty per yield: decelerate, wait for the other shuttle to
        #: clear, re-accelerate.
        self.yield_penalty_range = (1.0, 3.0)

    # -- access rules -------------------------------------------------- #

    def shuttle_can_fetch(self, shuttle: Shuttle, slot: SlotId) -> bool:
        raise NotImplementedError

    def drive_for(self, shuttle: Shuttle, slot: SlotId, drive_free: Callable[[int], bool]) -> Optional[int]:
        raise NotImplementedError

    # -- movement ------------------------------------------------------ #

    def plan_move(self, shuttle: Shuttle, target: Position, now: float) -> TripPlan:
        """Plan a move: motion-model time plus congestion from conflicts."""
        base = shuttle.plan_move(target, self.rng)
        x0 = min(shuttle.position.x, target.x)
        x1 = max(shuttle.position.x, target.x)
        lv0 = min(shuttle.position.level, target.level)
        lv1 = max(shuttle.position.level, target.level)
        conflicts = self.reservations.conflicts(
            shuttle.shuttle_id, now, now + base, x0, x1, lv0, lv1
        )
        congestion = 0.0
        cycles = 0
        for other in conflicts:
            self.total_conflicts += 1
            # Localized conflict resolution: highest shuttle id has priority.
            if shuttle.shuttle_id < other.shuttle_id:
                congestion += float(self.rng.uniform(*self.yield_penalty_range))
                cycles += 1
        total = base + congestion
        self.reservations.reserve(
            shuttle.shuttle_id, now, now + total, x0, x1, lv0, lv1
        )
        # Behavior-exact: the clock is monotonic and every query opens at
        # ``now``, so a corridor with ``t1 <= now`` can never overlap a
        # later query's window — compacting at ``now`` drops only rows the
        # conflict scan would reject anyway.
        self.reservations.maybe_prune(now)
        return TripPlan(base, congestion, cycles)


class PartitionedPolicy(TrafficPolicy):
    """Silica's logical partitioning with optional work stealing."""

    name = "silica"

    def __init__(
        self,
        layout: LibraryLayout,
        shuttles: Sequence[Shuttle],
        rng: np.random.Generator,
        work_stealing: bool = True,
        steal_threshold_bytes: float = 512e6,
        drive_bays: Optional[Sequence[DriveBay]] = None,
    ):
        super().__init__(layout, shuttles, rng, drive_bays=drive_bays)
        self.work_stealing = work_stealing
        self.steal_threshold_bytes = steal_threshold_bytes
        self.steals = 0
        self.partitions = self._build_partitions()
        for shuttle, partition in zip(self.shuttles, self.partitions):
            shuttle.partition = partition.index
            shuttle.position = partition.home
            shuttle.home = partition.home

    def _build_partitions(self) -> List[Partition]:
        """Tile the storage region into n (level-band x x-strip) rectangles.

        Levels separate first (different shelf bands use different rails,
        eliminating conflicts); bands split into x-strips once there are
        more shuttles than bands. Each tile is assigned the read drive that
        minimizes travel from its center, with drive sharing capped at
        ceil(n / drives) — each partition must contain at least one read
        drive *slot*, and a drive's two platter slots let two partitions
        share it.
        """
        n = len(self.shuttles)
        cfg = self.layout.config
        storage_racks = self.layout.storage_rack_indices()
        width = cfg.rack_width_m
        x_lo = min(storage_racks) * width
        x_hi = (max(storage_racks) + 1) * width
        shelves = cfg.shelves_per_panel
        rows = min(n, shelves)
        # Distribute n tiles over `rows` level-bands as evenly as possible.
        cols_per_row = [n // rows + (1 if i < n % rows else 0) for i in range(rows)]
        # Distribute shelf levels over the bands.
        levels_per_row = [
            shelves // rows + (1 if i < shelves % rows else 0) for i in range(rows)
        ]
        # Only bays with live drives behind them: a partition keyed to an
        # unpopulated bay would park fetches on a drive that never serves.
        drives = self.drive_bays
        max_share = -(-n // max(1, len(drives)))  # ceil
        share: Dict[int, int] = {d.drive_id: 0 for d in drives}
        partitions: List[Partition] = []
        level = 0
        index = 0
        for row in range(rows):
            level_lo = level
            level_hi = level + levels_per_row[row] - 1
            level = level_hi + 1
            cols = cols_per_row[row]
            edges = np.linspace(x_lo, x_hi, cols + 1)
            for col in range(cols):
                center_x = (edges[col] + edges[col + 1]) / 2
                center_level = (level_lo + level_hi) // 2
                home = Position(float(center_x), center_level)
                candidates = sorted(
                    drives,
                    key=lambda d: (
                        abs(d.position.x - center_x)
                        + width * abs(d.position.level - center_level)
                    ),
                )
                chosen = None
                for d in candidates:
                    if share[d.drive_id] < max_share:
                        chosen = d.drive_id
                        break
                if chosen is None:  # cannot happen given max_share, but be safe
                    chosen = candidates[0].drive_id
                share[chosen] += 1
                partitions.append(
                    Partition(
                        index,
                        float(edges[col]),
                        float(edges[col + 1]),
                        level_lo,
                        level_hi,
                        chosen,
                        home,
                    )
                )
                index += 1
        return partitions

    def partition_of_slot(self, slot: SlotId) -> int:
        pos = self.layout.slot_position(slot)
        for p in self.partitions:
            if p.contains(pos.x, pos.level):
                return p.index
        # Edge slots (rightmost x) fall back to the last tile of their band.
        in_band = [
            p for p in self.partitions if p.level_lo <= pos.level <= p.level_hi
        ]
        if in_band:
            return in_band[-1].index
        return self.partitions[-1].index

    def shuttle_can_fetch(self, shuttle: Shuttle, slot: SlotId) -> bool:
        return self.partition_of_slot(slot) == shuttle.partition

    def drive_for(self, shuttle: Shuttle, slot: SlotId, drive_free: Callable[[int], bool]) -> Optional[int]:
        drive = self.partitions[shuttle.partition].drive_id
        return drive if drive_free(drive) else None

    def steal_allowed(
        self, pending_bytes_by_partition: Dict[int, float]
    ) -> Optional[int]:
        """Partition to steal from, if imbalance exceeds the threshold.

        Returns the most loaded partition index when (max - min) pending
        bytes exceed the threshold; None otherwise.
        """
        candidates = self.steal_candidates(pending_bytes_by_partition)
        return candidates[0] if candidates else None

    def steal_candidates(
        self, pending_bytes_by_partition: Dict[int, float]
    ) -> List[int]:
        """Overloaded partitions to steal from, most loaded first.

        Empty unless the (max - min) pending-bytes imbalance exceeds the
        threshold; then every partition more than a threshold above the
        least loaded is a donor. Callers try donors in order because the
        most loaded partition's work may be locked in an in-service
        platter.
        """
        if not self.work_stealing or not pending_bytes_by_partition:
            return []
        loads = {
            p.index: pending_bytes_by_partition.get(p.index, 0.0)
            for p in self.partitions
        }
        least = min(loads.values())
        donors = [
            pid
            for pid, load in loads.items()
            if load - least > self.steal_threshold_bytes
        ]
        donors.sort(key=lambda pid: loads[pid], reverse=True)
        return donors


class ShortestPathsPolicy(TrafficPolicy):
    """SP baseline: free-roaming shuttles, shortest paths, no partitions."""

    name = "sp"

    def __init__(
        self,
        layout: LibraryLayout,
        shuttles: Sequence[Shuttle],
        rng: np.random.Generator,
        drive_bays: Optional[Sequence[DriveBay]] = None,
    ):
        super().__init__(layout, shuttles, rng, drive_bays=drive_bays)
        # Spread shuttles evenly as their initial/home positions.
        storage_racks = layout.storage_rack_indices()
        width = layout.config.rack_width_m
        x_lo = min(storage_racks) * width
        x_hi = (max(storage_racks) + 1) * width
        n = len(self.shuttles)
        for i, shuttle in enumerate(self.shuttles):
            x = x_lo + (i + 0.5) * (x_hi - x_lo) / n
            home = Position(float(x), layout.config.shelves_per_panel // 2)
            shuttle.position = home
            shuttle.home = home
            shuttle.partition = None

    def shuttle_can_fetch(self, shuttle: Shuttle, slot: SlotId) -> bool:
        return True

    def drive_for(self, shuttle: Shuttle, slot: SlotId, drive_free: Callable[[int], bool]) -> Optional[int]:
        """Free drive minimizing travel from the slot (time-to-mount)."""
        slot_pos = self.layout.slot_position(slot)
        best, best_dist = None, float("inf")
        for bay in self.drive_bays:
            if not drive_free(bay.drive_id):
                continue
            dist = abs(bay.position.x - slot_pos.x) + 0.5 * abs(
                bay.position.level - slot_pos.level
            )
            if dist < best_dist:
                best, best_dist = bay.drive_id, dist
        return best
