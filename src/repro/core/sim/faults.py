"""Fault subsystem: failure injection, repair clocks, return-to-service.

Owns the fault lifecycle of the §4/§6 chaos harness — scheduling shuttle /
drive / metadata failures, deferring faults that strike a busy component to
the next operation boundary (fired from the dispatch hook, no polling),
running repair clocks, accounting downtime, and recomputing the
controller's partition-cover and drive-routing tables after every topology
change. Fault *schedules* are produced by the outer :mod:`repro.faults`
layer and enter through the :class:`~repro.core.sim.hooks.
FaultScheduleLike` seam; the kernel only reads each event's component kind
string.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..traffic import PartitionedPolicy
from .context import SimContext
from .dispatch import DispatchSubsystem
from .hooks import FaultScheduleLike
from .lifecycle import RequestLifecycle
from .robotics import RoboticsSubsystem, ShuttleSim
from .verification import VerificationSubsystem

#: Event labels this subsystem schedules (fault fire/repair clocks): the
#: "faults" bucket of the subsystem wall-share table.
FAULT_EVENT_LABELS = frozenset(
    {
        "shuttle-failure",
        "drive-failure",
        "shuttle-repair",
        "drive-repair",
        "metadata-outage",
        "metadata-repair",
    }
)


class FaultSubsystem:
    """Failure injection and repair for shuttles, drives and metadata."""

    def __init__(
        self,
        ctx: SimContext,
        robotics: RoboticsSubsystem,
        lifecycle: RequestLifecycle,
        dispatch: DispatchSubsystem,
        verification: VerificationSubsystem,
    ):
        self.ctx = ctx
        self.robotics = robotics
        self.lifecycle = lifecycle
        self.dispatch = dispatch
        self.verification = verification
        # Fault lifecycle (repair clocks, §4/§6 chaos harness): faults that
        # struck a busy component wait here and fire from the dispatch hook
        # at the next operation boundary — no polling.
        self.pending_faults: List[Tuple[str, int, Optional[float]]] = []
        self._metadata_waiters: List[Callable[[], None]] = []
        self.active_fault_started: Dict[Tuple[str, int], float] = {}
        self.fault_platters: Dict[Tuple[str, int], Set[str]] = {}
        self.repair_durations: List[float] = []
        # Metadata service availability (arrivals need a metadata lookup).
        self._metadata_available = True

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule_shuttle_failure(
        self, time: float, shuttle_id: int, repair_after: Optional[float] = None
    ) -> None:
        """Fail a shuttle at (or shortly after) ``time``.

        Fail-stop at an operation boundary: if the shuttle is mid-trip, the
        failure is parked in the pending-fault set and fires from the
        dispatch hook when the shuttle next goes idle (event-driven — no
        polling), keeping every in-flight platter protocol consistent.
        Consequences:

        * the shelf the shuttle died on becomes a blast zone — its platters
          turn unavailable and their queued reads re-route through
          cross-platter recovery;
        * the controller reassigns the shuttle's partitions to the nearest
          alive shuttle (detection is reliable, Section 6).

        ``repair_after`` starts a repair clock: the shuttle returns to
        service that many seconds after the failure actually fires
        (transient fault); None means fail-stop forever (permanent).
        """
        ctx = self.ctx
        if not 0 <= shuttle_id < len(self.robotics.shuttles):
            raise IndexError(f"no shuttle {shuttle_id}")

        def fire() -> None:
            shuttle_sim = self.robotics.shuttles[shuttle_id]
            if shuttle_sim.shuttle.failed:
                return  # overlapping fault; the active one wins
            if shuttle_sim.busy:
                self.pending_faults.append(("shuttle", shuttle_id, repair_after))
                if ctx.tracer is not None:
                    ctx.tracer.emit(
                        ctx.sim.now,
                        "fault.deferred",
                        component=f"shuttle:{shuttle_id}",
                    )
                return
            self._fail_shuttle(shuttle_id, repair_after=repair_after)

        ctx.sim.schedule_at(time, fire, label="shuttle-failure")

    def schedule_drive_failure(
        self, time: float, drive_id: int, repair_after: Optional[float] = None
    ) -> None:
        """Fail a read drive at (or shortly after) ``time``.

        Same operation-boundary and repair-clock semantics as
        :meth:`schedule_shuttle_failure`.
        """
        ctx = self.ctx
        if not 0 <= drive_id < len(self.robotics.drives):
            raise IndexError(f"no drive {drive_id}")

        def fire() -> None:
            drive = self.robotics.drives[drive_id]
            if drive.failed:
                return
            if drive.occupied:
                self.pending_faults.append(("drive", drive_id, repair_after))
                if ctx.tracer is not None:
                    ctx.tracer.emit(
                        ctx.sim.now,
                        "fault.deferred",
                        component=f"drive:{drive_id}",
                    )
                return
            self._fail_drive(drive_id, repair_after=repair_after)

        ctx.sim.schedule_at(time, fire, label="drive-failure")

    def schedule_metadata_outage(
        self, time: float, duration: Optional[float] = None
    ) -> None:
        """Take the metadata service down at ``time``.

        Arrivals during the outage back off (capped exponential) until the
        service repairs ``duration`` seconds later; None means the outage
        lasts to the end of the run.
        """
        ctx = self.ctx

        def repair() -> None:
            if self._metadata_available:
                return
            self._metadata_available = True
            self._close_fault(("metadata", 0))
            waiters, self._metadata_waiters = self._metadata_waiters, []
            for retry in waiters:
                retry()
            ctx.request_dispatch()

        def fire() -> None:
            if not self._metadata_available:
                return  # overlapping outage; the active one wins
            self._metadata_available = False
            ctx.counters.faults_injected.inc()
            self.active_fault_started[("metadata", 0)] = ctx.sim.now
            if ctx.tracer is not None:
                ctx.tracer.emit(
                    ctx.sim.now,
                    "metadata.outage",
                    component="metadata",
                    duration=duration if duration is not None else -1.0,
                )
            if duration is not None:
                ctx.sim.schedule(duration, repair, label="metadata-repair")

        ctx.sim.schedule_at(time, fire, label="metadata-outage")

    @property
    def metadata_available(self) -> bool:
        """Whether the metadata service is currently up."""
        return self._metadata_available

    def add_metadata_waiter(self, retry: Callable[[], None]) -> None:
        """Park an arrival's retry until the metadata outage repairs."""
        self._metadata_waiters.append(retry)

    def apply_fault_schedule(self, schedule: FaultScheduleLike) -> None:
        """Arm every event of a fault schedule (``FaultScheduleLike``).

        Transient events carry their repair clock; permanent events never
        return. Call before running the simulation. Events are matched on
        their component kind string (``"shuttle"`` / ``"read_drive"`` /
        ``"metadata"``) so the kernel stays independent of the
        :mod:`repro.faults` enum type.
        """
        for event in schedule:
            repair_after = event.duration if event.repairs else None
            kind = getattr(event.component, "value", event.component)
            if kind == "shuttle":
                self.schedule_shuttle_failure(
                    event.start, event.target, repair_after=repair_after
                )
            elif kind == "read_drive":
                self.schedule_drive_failure(
                    event.start, event.target, repair_after=repair_after
                )
            else:
                self.schedule_metadata_outage(event.start, repair_after)

    # ------------------------------------------------------------------ #
    # Firing and repairing
    # ------------------------------------------------------------------ #

    def fire_pending_faults(self) -> None:
        """Fire deferred faults whose component reached an idle boundary."""
        if not self.pending_faults:
            return
        still_waiting: List[Tuple[str, int, Optional[float]]] = []
        for kind, target, repair_after in self.pending_faults:
            if kind == "shuttle":
                shuttle_sim = self.robotics.shuttles[target]
                if shuttle_sim.shuttle.failed:
                    continue  # a duplicate fault; the first one won
                if shuttle_sim.busy:
                    still_waiting.append((kind, target, repair_after))
                else:
                    self._fail_shuttle(target, repair_after=repair_after)
            else:
                drive = self.robotics.drives[target]
                if drive.failed:
                    continue
                if drive.occupied:
                    still_waiting.append((kind, target, repair_after))
                else:
                    self._fail_drive(target, repair_after=repair_after)
        self.pending_faults = still_waiting

    def _fail_shuttle(self, shuttle_id: int, repair_after: Optional[float] = None) -> None:
        ctx = self.ctx
        robotics = self.robotics
        shuttle_sim = robotics.shuttles[shuttle_id]
        shuttle = shuttle_sim.shuttle
        shuttle.fail()
        ctx.counters.faults_injected.inc()
        key = ("shuttle", shuttle_id)
        self.active_fault_started[key] = ctx.sim.now
        if ctx.tracer is not None:
            ctx.tracer.emit(
                ctx.sim.now,
                "fault.fire",
                component=f"shuttle:{shuttle_id}",
                permanent=repair_after is None,
            )
        # Blast zone: one shelf of one rack at the death position.
        width = robotics.layout.config.rack_width_m
        rack = int(shuttle.position.x // width)
        level = shuttle.position.level
        blocked = set()
        for platter, slot in list(robotics.home_slot.items()):
            if slot.rack == rack and slot.level == level:
                if robotics.layout.locate(platter) is not None:
                    if self.make_platter_unavailable(platter):
                        blocked.add(platter)
        self.fault_platters[key] = blocked
        # Controller reassigns coverage of this shuttle's partitions.
        self._recompute_partition_cover()
        if repair_after is not None:
            ctx.sim.schedule(
                repair_after,
                lambda: self._repair_shuttle(shuttle_id),
                label="shuttle-repair",
            )
        ctx.request_dispatch()

    def _repair_shuttle(self, shuttle_id: int) -> None:
        """Repair clock expired: the shuttle returns to service.

        Its blast zone clears (unless another active failure still covers a
        platter) and the controller hands its partitions back."""
        shuttle_sim = self.robotics.shuttles[shuttle_id]
        shuttle = shuttle_sim.shuttle
        if not shuttle.failed:
            return
        key = ("shuttle", shuttle_id)
        shuttle.repair()
        # Repair swaps the battery, so any idle-recharge memo is stale.
        shuttle_sim.no_recharge_memo = False
        self._close_fault(key)
        blocked = self.fault_platters.pop(key, set())
        still_blocked: Set[str] = set()
        for platters in self.fault_platters.values():
            still_blocked |= platters
        for platter in blocked - still_blocked:
            self.lifecycle.unavailable.discard(platter)
        self._recompute_partition_cover()
        self.ctx.request_dispatch()

    def _fail_drive(self, drive_id: int, repair_after: Optional[float] = None) -> None:
        ctx = self.ctx
        drive = self.robotics.drives[drive_id]
        drive.failed = True
        ctx.counters.faults_injected.inc()
        self.active_fault_started[("drive", drive_id)] = ctx.sim.now
        if ctx.tracer is not None:
            ctx.tracer.emit(
                ctx.sim.now,
                "fault.fire",
                component=f"drive:{drive_id}",
                permanent=repair_after is None,
            )
        self.verification.drive_stops_verifying()  # failure gate ensures it was idle
        self._recompute_drive_routing()
        if repair_after is not None:
            ctx.sim.schedule(
                repair_after,
                lambda: self._repair_drive(drive_id),
                label="drive-repair",
            )
        ctx.request_dispatch()

    def _repair_drive(self, drive_id: int) -> None:
        """Repair clock expired: the drive rejoins the fleet (and the
        verification pool) and partitions route back to it."""
        drive = self.robotics.drives[drive_id]
        if not drive.failed:
            return
        drive.failed = False
        self._close_fault(("drive", drive_id))
        self.verification.drive_resumes_verifying()
        self._recompute_drive_routing()
        self.ctx.request_dispatch()

    def _close_fault(self, key: Tuple[str, int]) -> None:
        """Account the downtime of a repaired fault."""
        ctx = self.ctx
        started = self.active_fault_started.pop(key, ctx.sim.now)
        downtime = max(0.0, ctx.sim.now - started)
        ctx.counters.downtime.inc(downtime)
        self.repair_durations.append(downtime)
        ctx.counters.faults_repaired.inc()
        if ctx.tracer is not None:
            kind, target = key
            ctx.tracer.emit(
                ctx.sim.now,
                "metadata.repair" if kind == "metadata" else "fault.repair",
                component="metadata" if kind == "metadata" else f"{kind}:{target}",
                downtime_s=downtime,
            )

    # ------------------------------------------------------------------ #
    # Topology recomputation
    # ------------------------------------------------------------------ #

    def _recompute_partition_cover(self) -> None:
        """Self-coverage for alive shuttles; orphaned partitions adopt the
        nearest alive shuttle (controller reassignment, Section 6)."""
        robotics = self.robotics
        if not isinstance(robotics.policy, PartitionedPolicy):
            return
        owner: Dict[int, ShuttleSim] = {}
        for shuttle_sim in robotics.shuttles:
            pid = shuttle_sim.shuttle.partition
            if pid is not None:
                owner[pid] = shuttle_sim
        cover = self.dispatch.partition_cover
        for pid in cover:
            own = owner.get(pid)
            if own is not None and not own.shuttle.failed:
                cover[pid] = pid
            else:
                cover[pid] = self._nearest_alive_partition(pid)
        self.dispatch.invalidate_cover()

    def _recompute_drive_routing(self) -> None:
        """Partitions whose native drive is down route to the nearest alive
        drive; routes return home when the native drive repairs."""
        robotics = self.robotics
        # Route caching keys on every drive.failed flip, and both fail and
        # repair paths land here — so this is the single invalidation point.
        self.dispatch.invalidate_routing()
        if not isinstance(robotics.policy, PartitionedPolicy):
            return
        alive = [d for d in robotics.drives if not d.failed]
        override = self.dispatch.drive_override
        for partition in robotics.policy.partitions:
            native = partition.drive_id
            if native >= len(robotics.drives):
                continue  # bay not populated in this configuration
            if not robotics.drives[native].failed:
                override.pop(partition.index, None)
            elif alive:
                nearest = min(
                    alive, key=lambda d: abs(d.position.x - partition.home.x)
                )
                override[partition.index] = nearest.drive_id

    def _nearest_alive_partition(self, failed_partition: int) -> int:
        """Partition index of the nearest alive shuttle (by home x/level)."""
        policy = self.robotics.policy
        assert isinstance(policy, PartitionedPolicy)
        failed_home = policy.partitions[failed_partition].home
        alive = [
            s.shuttle
            for s in self.robotics.shuttles
            if not s.shuttle.failed and s.shuttle.partition is not None
        ]
        if not alive:
            return failed_partition
        nearest = min(
            alive,
            key=lambda sh: abs(policy.partitions[sh.partition].home.x - failed_home.x)
            + 0.5 * abs(policy.partitions[sh.partition].home.level - failed_home.level),
        )
        return nearest.partition

    def make_platter_unavailable(self, platter: str) -> bool:
        """Mark a platter unreachable and re-route its queued reads.

        Returns True if this call made the platter unavailable (so the
        failure that caused it can restore it on repair)."""
        lifecycle = self.lifecycle
        scheduler = self.ctx.scheduler
        if platter in lifecycle.unavailable:
            return False
        if scheduler.in_service(platter):
            # Mounted or being fetched: it escaped the blast zone.
            return False
        lifecycle.unavailable.add(platter)
        pending = scheduler.remove_pending(platter)
        if pending:
            self.dispatch.reduce_partition_load(
                platter, sum(r.size_bytes for r in pending)
            )
        for request in pending:
            lifecycle.ingest(request)
        return True
