"""Configuration of one library-simulation run.

:class:`SimConfig` is the single frozen dataclass every layer shares: the
CLI builds it from flags, bench scenarios pin it under a seed, and the
kernel subsystems read it through :class:`~repro.core.sim.context.
SimContext`. It is picklable (tenant registries are plain frozen
dataclasses) so parameter sweeps can ship configs to worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...library.layout import LibraryConfig
from .hooks import TenancyLike


@dataclass(frozen=True)
class SimConfig:
    """Configuration of one library simulation run."""

    drive_throughput_mbps: float = 60.0
    num_drives: int = 20
    num_shuttles: int = 20
    policy: str = "silica"  # "silica" | "sp" | "ns"
    work_stealing: bool = True
    amortize_batch: bool = True
    fast_switching: bool = True
    track_payload_bytes: float = 20e6  # 200 layers x 100 kB sectors
    nc_read_overhead: float = 0.10  # within-track NC + framing read inflation
    num_platters: int = 3000
    platter_set_information: int = 16
    platter_set_redundancy: int = 3
    unavailable_fraction: float = 0.0
    shard_tracks_limit: int = 50  # large files shard across platters (§6)
    platter_tracks: int = 100_000  # tracks per platter (seek distances)
    sort_batch_by_track: bool = False  # elevator read order (§4.1 ablation)
    battery_management: bool = True  # controller monitors battery (§4.1)
    battery_capacity_joules: float = 400_000.0
    battery_low_threshold: float = 0.15
    recharge_seconds: float = 900.0
    # Transient-fault lifecycle (chaos harness): per-attempt probability of a
    # transient sector read error, and the read-retry escalation ladder's
    # costs — a re-read costs another seek+scan; the deeper LDPC iteration
    # budget costs ``deep_decode_factor`` extra scans and leaves a residual
    # error probability of ``prob * deep_decode_residual`` before the last
    # rung (cross-platter NC recovery) is taken.
    transient_read_error_prob: float = 0.0
    deep_decode_factor: float = 2.0
    deep_decode_residual: float = 0.1
    # Capped exponential backoff for arrivals hitting a metadata outage.
    metadata_backoff_base_seconds: float = 1.0
    metadata_backoff_cap_seconds: float = 60.0
    # Multi-tenant QoS: the platter-fetch priority policy ("arrival" is the
    # §4.1 default; "deadline" is the weighted-deadline policy and needs a
    # tenant registry), plus the tenant mix itself. With ``tenancy`` set,
    # ingress quotas are enforced at trace intake and the report grows a
    # per-tenant / per-class QoS block. The registry enters through the
    # :class:`~repro.core.sim.hooks.TenancyLike` seam — the kernel never
    # imports the tenancy package.
    fetch_policy: str = "arrival"
    tenancy: Optional[TenancyLike] = None
    # Incremental dispatch: the dispatch subsystem maintains dirty-flagged
    # caches (partition-cover index, drive routes, steal donors, pending
    # returns) instead of rescanning topology on every dispatch event.
    # False selects the per-event full-rescan reference path — byte-exact
    # with the incremental one (pinned by the golden-replay suite) and kept
    # for differential testing.
    incremental_dispatch: bool = True
    # Event-scheduler backend behind the engine's pending-event set
    # ("heap" | "calendar"). Both fire events in exactly the same
    # ``(time, seq)`` order (pinned by the scheduler-equivalence suites),
    # so this is purely a wall-time knob; None defers to the engine's
    # ``DEFAULT_SCHEDULER``.
    event_scheduler: Optional[str] = None
    # Fine-grained shuttle motion: True (the default) schedules every trip
    # hop (move/pick/move/place) as its own event; False collapses each
    # trip into one closed-form completion event. Coarse trips draw RNG in
    # the same canonical order *within* a trip but at the trip's start
    # rather than spread across hop times, so on fleets where trips
    # overlap other RNG consumers the global draw interleaving — and hence
    # simulated metrics — can differ from fine. On serialized geometries
    # the two are byte-identical (pinned by golden replay).
    fine_motion_events: bool = True
    seed: int = 0
    library: LibraryConfig = field(default_factory=LibraryConfig)

    def __post_init__(self) -> None:
        if self.policy not in ("silica", "sp", "ns"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.event_scheduler not in (None, "heap", "calendar"):
            raise ValueError(f"unknown event scheduler {self.event_scheduler!r}")
        if self.fetch_policy not in ("arrival", "deadline"):
            raise ValueError(f"unknown fetch policy {self.fetch_policy!r}")
        if self.fetch_policy == "deadline" and self.tenancy is None:
            raise ValueError("fetch_policy='deadline' requires a tenancy registry")
        if self.num_shuttles > self.library.max_shuttles:
            raise ValueError(
                f"{self.num_shuttles} shuttles exceed the panel cap of "
                f"{self.library.max_shuttles} (2x read drives)"
            )
        if not 0 <= self.unavailable_fraction < 1:
            raise ValueError("unavailable_fraction must be in [0, 1)")
        if not 0 <= self.transient_read_error_prob < 1:
            raise ValueError("transient_read_error_prob must be in [0, 1)")
        if self.metadata_backoff_base_seconds <= 0:
            raise ValueError("metadata_backoff_base_seconds must be positive")

    @property
    def track_read_bytes(self) -> float:
        """Raw bytes scanned per track (payload + NC/framing overhead)."""
        return self.track_payload_bytes * (1 + self.nc_read_overhead)
