"""Request lifecycle: intake, routing, queueing, recovery, completion.

Owns every state transition a read request makes between trace intake and
completion — platter assignment, admission (through the
:class:`~repro.core.sim.hooks.AdmissionLike` seam), sharding of large
files, metadata-outage backoff, enqueueing into the scheduler, cross-platter
recovery fan-out, abandonment and completion accounting — plus the
platter-set erasure-coding geometry and the run's unavailable-platter set.
The mechanics of actually serving requests live in the robotics subsystem;
assigning work lives in dispatch.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Set

import numpy as np

from ...workload.traces import ReadRequest, ReadTrace
from ..requests import SimRequest
from .context import SimContext
from .hooks import AdmissionLike
from .robotics import RoboticsSubsystem

if TYPE_CHECKING:  # pragma: no cover
    from .dispatch import DispatchSubsystem
    from .faults import FaultSubsystem

#: Event labels this subsystem schedules (workload arrivals and metadata
#: retry backoff): the "lifecycle" bucket of the subsystem wall table.
LIFECYCLE_EVENT_LABELS = frozenset({"arrival", "metadata-retry"})


class RequestLifecycle:
    """Every request state transition from trace intake to completion."""

    def __init__(
        self,
        ctx: SimContext,
        robotics: RoboticsSubsystem,
        admission: Optional[AdmissionLike] = None,
    ):
        self.ctx = ctx
        self.robotics = robotics
        self.admission = admission
        self.all_requests: List[SimRequest] = []
        self._next_request_id = 0
        self.unavailable: Set[str] = set()
        if ctx.config.unavailable_fraction > 0:
            self._sample_unavailable()
        # Sibling subsystems, bound by :meth:`wire` during composition.
        self.dispatch: "DispatchSubsystem" = None  # type: ignore[assignment]
        self.faults: "FaultSubsystem" = None  # type: ignore[assignment]

    def wire(self, dispatch: "DispatchSubsystem", faults: "FaultSubsystem") -> None:
        """Bind the sibling subsystems this one calls into."""
        self.dispatch = dispatch
        self.faults = faults

    # ------------------------------------------------------------------ #
    # Platter-set geometry
    # ------------------------------------------------------------------ #

    def _sample_unavailable(self) -> None:
        """Uniformly random unavailable platters, capped at R per platter-set.

        The blast-zone placement invariant (Section 6) guarantees a single
        failure removes at most R platters of any set; we keep the sampled
        pattern consistent with that invariant so recovery is always
        possible.
        """
        cfg = self.ctx.config
        platters = self.robotics.platters
        group = cfg.platter_set_information + cfg.platter_set_redundancy
        target = int(round(cfg.unavailable_fraction * len(platters)))
        per_set: Dict[int, int] = {}
        order = self.ctx.rng.permutation(len(platters))
        for idx in order:
            if len(self.unavailable) >= target:
                break
            set_id = int(idx) // group
            if per_set.get(set_id, 0) >= cfg.platter_set_redundancy:
                continue
            per_set[set_id] = per_set.get(set_id, 0) + 1
            self.unavailable.add(platters[int(idx)])

    def platter_set_of(self, platter_id: str) -> List[str]:
        """The erasure-coded platter set ``platter_id`` belongs to."""
        cfg = self.ctx.config
        group = cfg.platter_set_information + cfg.platter_set_redundancy
        index = self.robotics.platter_index[platter_id]
        start = (index // group) * group
        return self.robotics.platters[start : start + group]

    def _distinct_platters(self, count: int) -> List[str]:
        """Distinct shard platters. Placement is failure-oblivious: shards
        were written long before any failure, so unavailable platters are
        legitimate targets — their shards get recovered via cross-platter
        NC like any other read (see :meth:`ingest`)."""
        platters = self.robotics.platters
        if count >= len(platters):
            return list(platters)
        picks = self.ctx.rng.choice(len(platters), size=count, replace=False)
        return [platters[int(i)] for i in picks]

    def _new_id(self) -> int:
        self._next_request_id += 1
        return self._next_request_id

    def _random_track_start(self, num_tracks: int) -> int:
        """Uniform file location on the platter (seek distances, Fig. 3d)."""
        upper = max(1, self.ctx.config.platter_tracks - num_tracks)
        return int(self.ctx.rng.integers(0, upper))

    # ------------------------------------------------------------------ #
    # Request intake
    # ------------------------------------------------------------------ #

    def assign_trace(
        self,
        trace: ReadTrace,
        measure_start: float,
        measure_end: float,
        skew: Optional[float] = None,
    ) -> None:
        """Map trace requests onto platters and schedule their arrivals.

        ``skew`` enables a Zipf distribution over platters (Section 7.5's
        skewed-request experiment); None means uniform (the default
        methodology: "we distribute the read requests to platters stored in
        the library uniformly").
        """
        rng = self.ctx.rng
        platters = self.robotics.platters
        n = len(platters)
        weights = None
        platter_order = None
        if skew is not None:
            ranks = np.arange(1, n + 1, dtype=np.float64)
            weights = ranks**-skew
            weights /= weights.sum()
            platter_order = rng.permutation(n)
        for request in trace:
            if weights is None:
                platter = platters[int(rng.integers(0, n))]
            else:
                rank = int(rng.choice(n, p=weights))
                platter = platters[int(platter_order[rank])]
            measured = measure_start <= request.time < measure_end
            self.submit(request, platter, measured)

    def submit(self, request: ReadRequest, platter: str, measured: bool) -> None:
        """Admit one trace request, shard it if large, and route it in."""
        ctx = self.ctx
        cfg = ctx.config
        slo_class = ""
        deadline: Optional[float] = None
        if cfg.tenancy is not None:
            # Ingress admission: trace requests are processed in time order,
            # so charging the token bucket at ``request.time`` replays the
            # frontend's decisions deterministically.
            if self.admission is not None and not self.admission.admit(
                request.tenant, request.size_bytes, request.time
            ):
                if ctx.counters.admission_rejects is not None:
                    ctx.counters.admission_rejects.inc()
                if ctx.tracer is not None:
                    ctx.tracer.emit(
                        request.time,
                        "admission.reject",
                        tenant=request.tenant,
                        size_bytes=request.size_bytes,
                    )
                return
            slo = cfg.tenancy.class_of(request.tenant)
            slo_class = slo.name
            deadline = request.time + slo.deadline_seconds
            if ctx.tracer is not None:
                ctx.tracer.emit(
                    request.time,
                    "admission.accept",
                    tenant=request.tenant,
                    size_bytes=request.size_bytes,
                )
        total_tracks = max(1, int(math.ceil(request.size_bytes / cfg.track_payload_bytes)))
        # Large files are sharded across platters to parallelize their reads
        # (Section 6); each shard is an independent sub-read.
        if total_tracks > cfg.shard_tracks_limit:
            parent = SimRequest(
                request_id=self._new_id(),
                arrival=request.time,
                platter_id=platter,
                size_bytes=request.size_bytes,
                num_tracks=total_tracks,
                measured=measured,
                tenant=request.tenant,
                slo_class=slo_class,
                deadline=deadline,
            )
            self.all_requests.append(parent)
            num_shards = -(-total_tracks // cfg.shard_tracks_limit)
            shard_platters = self._distinct_platters(num_shards)
            shards = []
            tracks_left = total_tracks
            for p in shard_platters:
                tracks = min(cfg.shard_tracks_limit, tracks_left)
                tracks_left -= tracks
                shards.append(
                    SimRequest(
                        request_id=self._new_id(),
                        arrival=request.time,
                        platter_id=p,
                        size_bytes=int(tracks * cfg.track_payload_bytes),
                        num_tracks=tracks,
                        track_start=self._random_track_start(tracks),
                        measured=False,
                        parent=parent,
                        tenant=request.tenant,
                        slo_class=slo_class,
                        deadline=deadline,
                    )
                )
                if tracks_left <= 0:
                    break
            parent.pending_subreads = len(shards)
            parent.children = shards
            for shard in shards:
                self.all_requests.append(shard)
                self.ingest(shard)
            return
        sim_request = SimRequest(
            request_id=self._new_id(),
            arrival=request.time,
            platter_id=platter,
            size_bytes=request.size_bytes,
            num_tracks=total_tracks,
            track_start=self._random_track_start(total_tracks),
            measured=measured,
            tenant=request.tenant,
            slo_class=slo_class,
            deadline=deadline,
        )
        self.all_requests.append(sim_request)
        self.ingest(sim_request)

    def ingest(self, sim_request: SimRequest) -> None:
        """Route one (sub-)request: direct read, or cross-platter recovery.

        Availability is re-checked when the arrival event fires (see
        :meth:`_schedule_arrival`), so requests routed before a dynamic
        failure still recover correctly.
        """
        if sim_request.platter_id in self.unavailable:
            if not self.fan_out_recovery(sim_request):
                self.abandon_request(sim_request)
            return
        self._schedule_arrival(sim_request)

    # ------------------------------------------------------------------ #
    # Completion, loss, recovery
    # ------------------------------------------------------------------ #

    def abandon_request(self, sim_request: SimRequest) -> None:
        """No surviving recovery peer: the read is lost.

        Only reachable when an entire platter-set is simultaneously
        unavailable — far outside the blast-zone invariant — but the sim
        must stay sound (and terminating) even there, so the request
        completes immediately and is tallied as lost."""
        ctx = self.ctx
        ctx.counters.requests_lost.inc()
        if ctx.tracer is not None:
            ctx.tracer.emit(
                ctx.sim.now, "request.lost", request_id=sim_request.request_id
            )
        sim_request.mark_degraded()
        self.complete_request(sim_request)

    def complete_request(self, sim_request: SimRequest) -> None:
        """Completion bookkeeping shared by every completion site:
        propagate up the sub-read hierarchy, record the completion-time
        histogram for measured top-level requests, and trace."""
        ctx = self.ctx
        now = ctx.sim.now
        finished = sim_request.complete(now)
        tr = ctx.tracer
        if tr is not None:
            tr.emit(now, "request.complete", request_id=sim_request.request_id)
            if finished is not None:
                tr.emit(now, "request.complete", request_id=finished.request_id)
        for node in (sim_request, finished):
            if node is not None and node.measured and node.parent is None:
                ctx.counters.h_completion.observe(node.completion_time)
                if node.deadline is not None and now > node.deadline:
                    if ctx.counters.deadline_misses is not None:
                        ctx.counters.deadline_misses.inc()
                    if tr is not None:
                        tr.emit(
                            now,
                            "request.deadline_miss",
                            request_id=node.request_id,
                            tenant=node.tenant,
                            slo_class=node.slo_class,
                            late_seconds=now - node.deadline,
                        )

    def fan_out_recovery(self, sim_request: SimRequest) -> List[SimRequest]:
        """Cross-platter NC: read the matching tracks on I_p available
        platters of the set (Section 7.6's 16x read amplification). If
        dynamic failures left fewer than I_p peers available, recovery
        proceeds degraded with what remains (real deployments prevent this
        via blast-zone-aware placement; the simulator places uniformly).
        Returns the recovery sub-reads (empty when no peer survives)."""
        ctx = self.ctx
        cfg = ctx.config
        peers = [
            p
            for p in self.platter_set_of(sim_request.platter_id)
            if p != sim_request.platter_id and p not in self.unavailable
        ]
        recovery = peers[: cfg.platter_set_information]
        subs = sim_request.fan_out(recovery, [self._new_id() for _ in recovery])
        if subs:
            sim_request.mark_degraded()
            ctx.counters.fanout_user_bytes.inc(sim_request.size_bytes)
            if ctx.tracer is not None:
                ctx.tracer.emit(
                    ctx.sim.now,
                    "recovery.fanout",
                    request_id=sim_request.request_id,
                    peers=len(subs),
                    platter=sim_request.platter_id,
                )
        for sub in subs:
            self.all_requests.append(sub)
            self._schedule_arrival(sub)
        return subs

    # ------------------------------------------------------------------ #
    # Arrival + queueing
    # ------------------------------------------------------------------ #

    def _schedule_arrival(self, sim_request: SimRequest) -> None:
        # The two closures below are allocated once per (sub-)request;
        # reaching state through ``self`` keeps their captured-cell count
        # (and therefore run-time memory) at the monolith's level.
        def arrive() -> None:
            ctx = self.ctx
            # Every arrival needs a metadata lookup; during an outage the
            # request parks until the repair event fires, then re-arrives
            # after its capped-exponential backoff (the client's next poll
            # catches the failover). Event-driven: an outage that never
            # repairs costs zero events instead of an unbounded retry storm.
            if not self.faults.metadata_available:
                ctx.counters.metadata_retries.inc()
                sim_request.metadata_attempts += 1
                sim_request.mark_degraded()
                self.faults.add_metadata_waiter(retry_after_repair)
                if ctx.tracer is not None:
                    ctx.tracer.emit(
                        ctx.sim.now,
                        "request.metadata_blocked",
                        request_id=sim_request.request_id,
                        attempts=sim_request.metadata_attempts,
                    )
                return
            if ctx.tracer is not None:
                ctx.tracer.emit(
                    ctx.sim.now,
                    "request.arrival",
                    request_id=sim_request.request_id,
                    arrival=sim_request.arrival,
                    platter=sim_request.platter_id,
                    size_bytes=sim_request.size_bytes,
                    recovery=sim_request.is_recovery,
                )
            # A failure may have struck between routing and arrival.
            if sim_request.platter_id in self.unavailable:
                if not self.fan_out_recovery(sim_request):
                    self.abandon_request(sim_request)
            else:
                self._enqueue(sim_request)
            ctx.request_dispatch()

        def retry_after_repair() -> None:
            cfg = self.ctx.config
            exponent = min(sim_request.metadata_attempts - 1, 32)
            delay = min(
                cfg.metadata_backoff_base_seconds * (2.0 ** exponent),
                cfg.metadata_backoff_cap_seconds,
            )
            self.ctx.counters.metadata_backoff.inc(delay)
            self.ctx.sim.schedule(delay, arrive, label="metadata-retry")

        # Re-ingested requests (failure re-routing) arrive "now"; their
        # original arrival stamp is kept for completion-time accounting.
        at = max(sim_request.arrival, self.ctx.sim.now)
        self.ctx.sim.schedule_at(at, arrive, label="arrival")

    def _enqueue(self, sim_request: SimRequest) -> None:
        ctx = self.ctx
        improved = ctx.scheduler.enqueue(sim_request)
        if ctx.tracer is not None:
            ctx.tracer.emit(
                ctx.sim.now,
                "request.enqueue",
                request_id=sim_request.request_id,
                platter=sim_request.platter_id,
            )
        platter = sim_request.platter_id
        self.dispatch.note_enqueued(platter, sim_request.size_bytes)
        if improved:
            priority = ctx.scheduler.priority_for(platter)
            if priority is not None:
                self.dispatch.push_candidate(platter, priority)
