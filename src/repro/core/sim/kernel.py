"""The composed simulation kernel: subsystems wired over one context.

:class:`SimKernel` builds the context and the five subsystems in a fixed
order (the order is load-bearing: it preserves the RNG draw sequence of
the original monolithic simulator, keeping matched-seed runs byte-exact),
wires their cross-references, and owns the run/report surface. The
:class:`~repro.core.sim.facade.LibrarySimulation` facade delegates here;
tools that don't need the legacy attribute surface (worker processes,
golden-replay tests) can drive the kernel directly.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, Optional

from ..metrics import (
    CompletionStats,
    DriveUtilization,
    QoSMetrics,
    ResilienceMetrics,
    ShuttleMetrics,
    SimulationReport,
)
from ..requests import SimRequest
from ..scheduler import RequestScheduler
from .config import SimConfig
from .context import SimContext
from .dispatch import DISPATCH_EVENT_LABELS, DispatchSubsystem
from .faults import FAULT_EVENT_LABELS, FaultSubsystem
from .hooks import TracerLike
from .lifecycle import LIFECYCLE_EVENT_LABELS, RequestLifecycle
from .robotics import (
    MOTION_EVENT_LABELS,
    ROBOTICS_EVENT_LABELS,
    RoboticsSubsystem,
)
from .verification import VERIFICATION_EVENT_LABELS, VerificationSubsystem

#: Subsystem -> event labels it schedules, aggregated from the constants
#: each subsystem module keeps beside its ``schedule`` calls. This is the
#: kernel's authoritative map for wall-clock subsystem attribution
#: (:class:`repro.observability.profiler.PhaseProfiler`); labels not in
#: any set — engine machinery (``:grant``/``:late-done``), bench ticks,
#: unlabeled callbacks — fall to the profiler's "engine" bucket.
SUBSYSTEM_LABELS: Dict[str, FrozenSet[str]] = {
    "dispatch": DISPATCH_EVENT_LABELS,
    "motion": MOTION_EVENT_LABELS,
    "robotics": ROBOTICS_EVENT_LABELS,
    "lifecycle": LIFECYCLE_EVENT_LABELS,
    "faults": FAULT_EVENT_LABELS,
    "verification": VERIFICATION_EVENT_LABELS,
}


class SimKernel:
    """One composed library-simulation instance."""

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        tracer: Optional[TracerLike] = None,
    ):
        self.config = config or SimConfig()
        cfg = self.config
        self.ctx = SimContext(cfg, tracer)
        # Composition order preserves the monolith's RNG draw sequence:
        # traffic-policy construction and platter placement (robotics)
        # first, then the unavailable-platter sample (lifecycle). Tenancy
        # resolution and index construction draw nothing.
        self.robotics = RoboticsSubsystem(self.ctx)
        admission = None
        if cfg.tenancy is not None:
            # The tenancy layer enters through the TenancyLike seam: the
            # registry manufactures its own admission controller and fetch
            # policy, so the kernel never imports repro.tenancy.
            admission = cfg.tenancy.admission_controller()
            fetch_policy = cfg.tenancy.fetch_policy_for(cfg.fetch_policy)
            self.ctx.scheduler = RequestScheduler(
                amortize_batch=cfg.amortize_batch, policy=fetch_policy
            )
        self.lifecycle = RequestLifecycle(self.ctx, self.robotics, admission)
        self.dispatch = DispatchSubsystem(self.ctx, self.robotics, self.lifecycle)
        self.verification = VerificationSubsystem(self.ctx, len(self.robotics.drives))
        self.faults = FaultSubsystem(
            self.ctx, self.robotics, self.lifecycle, self.dispatch, self.verification
        )
        self.robotics.wire(self.dispatch, self.lifecycle, self.verification)
        self.lifecycle.wire(self.dispatch, self.faults)
        self.dispatch.wire(self.faults)
        self.ctx.request_dispatch = self.dispatch.request_dispatch

    # ------------------------------------------------------------------ #
    # Run + report
    # ------------------------------------------------------------------ #

    def run(
        self, until: Optional[float] = None, max_events: int = 50_000_000
    ) -> SimulationReport:
        """Run the event loop to quiescence (or ``until``) and report."""
        self.ctx.sim.run(until=until, max_events=max_events)
        return self.report()

    # ------------------------------------------------------------------ #
    # Sim-time state sampling (the monitor hook)
    # ------------------------------------------------------------------ #

    def sample_state(self) -> Dict[str, float]:
        """Read-only gauge snapshot of live kernel state, for samplers.

        Every value is computed by *reading* subsystem state — no
        dispatch caches are touched or populated (``partition_drive`` is
        maintained on both the incremental and rescan paths, so routing
        reads are safe), no RNG is drawn, and no events are scheduled.
        That purity is what lets a monitor-on run keep its simulated
        metrics byte-identical to the monitor-off run.
        """
        robotics = self.robotics
        scheduler = self.ctx.scheduler
        dispatch = self.dispatch
        free = 0
        for pid in dispatch.partition_cover:
            drive = dispatch.partition_drive(pid)
            if drive is not None and drive.customer_slot_free:
                free += 1
        in_flight = 0
        pressured = 0
        now = self.ctx.sim.now
        for request in self.lifecycle.all_requests:
            if request.parent is not None or request.done:
                continue
            in_flight += 1
            if request.deadline is not None and now > request.deadline:
                pressured += 1
        return {
            "pending_requests": float(scheduler.pending_requests),
            "pending_platters": float(scheduler.pending_platters),
            "busy_shuttles": float(
                sum(1 for s in robotics.shuttles if s.sampled_busy)
            ),
            "busy_drives": float(
                sum(1 for d in robotics.drives if d.sampled_busy)
            ),
            "free_partitions": float(free),
            "in_flight_requests": float(in_flight),
            "deadline_pressured": float(pressured),
            "active_faults": float(len(self.faults.active_fault_started)),
            "metadata_down": 0.0 if self.faults.metadata_available else 1.0,
        }

    def attach_sampler(
        self,
        interval_seconds: float,
        callback: Callable[[float], Optional[float]],
    ) -> None:
        """Fire ``callback(now)`` every ``interval_seconds`` of sim time.

        The callback returns the next interval (letting a downsampling
        monitor stretch its cadence) or ``None`` to stop. Delegates to
        the engine's :meth:`repro.core.events.Simulation.set_sampler`
        hook: samples are interleaved by the run loop, not queued as
        events, so they never extend a run, reorder events, or perturb
        ``events_processed``. The callback must be read-only against
        kernel state (see :meth:`sample_state`) to preserve
        byte-identical metrics.
        """
        self.ctx.sim.set_sampler(interval_seconds, callback)

    def measured_completed(self) -> Iterator[SimRequest]:
        """Measured, completed top-level requests (the report population).

        The single definition of "a request that counts": shared by the
        report, the end-to-end composition and the deployment aggregator so
        the filter can't drift between them. Lazy so report-time memory
        stays flat on multi-hundred-thousand-request runs.
        """
        return (
            r
            for r in self.lifecycle.all_requests
            if r.measured and r.done and r.parent is None
        )

    def report(self) -> SimulationReport:
        """Snapshot the run into a :class:`SimulationReport`."""
        ctx = self.ctx
        robotics = self.robotics
        self.verification.update_fluid()
        total = ctx.sim.now
        per_drive = []
        agg = DriveUtilization()
        bytes_verified = 0.0
        for drive in robotics.drives:
            verify = max(0.0, total - drive.read_seconds - drive.switch_seconds)
            util = DriveUtilization(
                read_seconds=drive.read_seconds,
                verify_seconds=verify,
                switch_seconds=drive.switch_seconds,
                total_seconds=total,
            )
            per_drive.append(util)
            agg = agg + util
            bytes_verified += verify * drive.model.config.throughput_mbps * 1e6
        congestion_total = sum(
            s.shuttle.stats.congestion_seconds for s in robotics.shuttles
        )
        travel_total = sum(s.shuttle.stats.travel_seconds for s in robotics.shuttles)
        unobstructed = travel_total - congestion_total
        energy = sum(s.shuttle.stats.energy_joules for s in robotics.shuttles)
        platter_ops = sum(
            s.shuttle.stats.platter_operations for s in robotics.shuttles
        )
        shuttle_metrics = ShuttleMetrics(
            congestion_overhead=congestion_total / unobstructed
            if unobstructed > 0
            else 0.0,
            energy_per_platter_op=energy / platter_ops if platter_ops else 0.0,
            travel_times=robotics.travel_times,
            total_conflicts=robotics.policy.total_conflicts if robotics.policy else 0,
            steals=getattr(robotics.policy, "steals", 0),
        )
        all_requests = self.lifecycle.all_requests
        measured = [r.completion_time for r in self.measured_completed()]
        completed_all = sum(1 for r in all_requests if r.done and r.parent is None)
        submitted_all = sum(1 for r in all_requests if r.parent is None)
        resilience = self._resilience_metrics(total)
        completions = CompletionStats.from_times(measured)
        # Snapshot headline figures as gauges so a metrics export alone
        # (without report.json) is self-describing.
        m = ctx.metrics
        m.gauge("simulated_seconds", "Simulated wall time", unit="seconds").set(total)
        m.gauge("requests_submitted", "Top-level requests submitted").set(submitted_all)
        m.gauge("requests_completed", "Top-level requests completed").set(completed_all)
        m.gauge("availability", "Component availability over the run").set(
            resilience.availability
        )
        m.gauge(
            "tail_seconds", "Measured completion-time p99.9", unit="seconds"
        ).set(completions.tail)
        m.gauge("drive_utilization_read", "Aggregate drive read-time fraction").set(
            agg.read_fraction
        )
        m.gauge(
            "verify_backlog_bytes", "Verification backlog at end of run", unit="bytes"
        ).set(self.verification.backlog_bytes)
        m.gauge("congestion_overhead", "Shuttle congestion / unobstructed travel").set(
            shuttle_metrics.congestion_overhead
        )
        m.gauge(
            "energy_per_platter_op", "Shuttle energy per platter operation", unit="joules"
        ).set(shuttle_metrics.energy_per_platter_op)
        # Engine counters: deterministic under a pinned seed (pure functions
        # of the schedule/cancel sequence), so they ride the EXACT gates.
        engine = ctx.sim.scheduler_stats
        m.gauge("engine_pushes", "Events pushed into the scheduler backend").set(
            engine["pushes"]
        )
        m.gauge("engine_pops", "Live events dequeued by the scheduler backend").set(
            engine["pops"]
        )
        m.gauge(
            "engine_cancelled_skips", "Cancelled entries discarded at dequeue"
        ).set(engine["cancelled_skips"])
        m.gauge("engine_resizes", "Calendar-queue ring rebuilds (0 for heap)").set(
            engine["resizes"]
        )
        qos = None
        if self.config.tenancy is not None:
            admission = self.lifecycle.admission
            qos = QoSMetrics.from_requests(
                all_requests,
                self.config.tenancy,
                admission.stats_dict() if admission else None,
            )
            m.gauge("qos_jain_fairness", "Jain index over per-tenant mean slowdown").set(
                qos.jain_fairness
            )
            m.gauge("qos_deadline_misses", "Measured completions past deadline").set(
                qos.deadline_misses
            )
            m.gauge("qos_admission_rejections", "Reads rejected by ingress quotas").set(
                qos.admission_rejections
            )
        return SimulationReport(
            qos=qos,
            resilience=resilience,
            completions=completions,
            drive_utilization=agg,
            per_drive_utilization=per_drive,
            shuttles=shuttle_metrics,
            requests_submitted=submitted_all,
            requests_completed=completed_all,
            bytes_read=ctx.counters.bytes_read.value,
            bytes_verified=bytes_verified,
            seek_seconds=sum(d.seek_seconds for d in robotics.drives),
            simulated_seconds=total,
        )

    def _resilience_metrics(self, total_seconds: float) -> ResilienceMetrics:
        """Fault-lifecycle accounting over the whole run."""
        counters = self.ctx.counters
        faults = self.faults
        # Downtime of closed (repaired) faults plus the open tail of every
        # fault still active at the end of the run.
        downtime = counters.downtime.value
        for started in faults.active_fault_started.values():
            downtime += max(0.0, total_seconds - started)
        num_components = (
            len(self.robotics.shuttles) + len(self.robotics.drives) + 1
        )  # + metadata
        budget = num_components * total_seconds
        availability = 1.0 - downtime / budget if budget > 0 else 1.0
        mttr = (
            sum(faults.repair_durations) / len(faults.repair_durations)
            if faults.repair_durations
            else 0.0
        )
        degraded = [
            r
            for r in self.lifecycle.all_requests
            if r.parent is None and r.degraded
        ]
        degraded_times = [
            r.completion_time for r in degraded if r.measured and r.done
        ]
        fanout_user_bytes = counters.fanout_user_bytes.value
        amplification = (
            counters.recovery_bytes.value / fanout_user_bytes
            if fanout_user_bytes > 0
            else 0.0
        )
        return ResilienceMetrics(
            faults_injected=int(counters.faults_injected.value),
            faults_repaired=int(counters.faults_repaired.value),
            availability=max(0.0, availability),
            mean_time_to_repair=mttr,
            downtime_component_seconds=downtime,
            reread_retries=int(counters.reread.value),
            deep_decodes=int(counters.deep_decode.value),
            recovery_escalations=int(counters.escalations.value),
            recovery_bytes_read=counters.recovery_bytes.value,
            recovery_read_amplification=amplification,
            metadata_retries=int(counters.metadata_retries.value),
            requests_lost=int(counters.requests_lost.value),
            degraded_requests=len(degraded),
            degraded_completions=CompletionStats.from_times(degraded_times),
        )
