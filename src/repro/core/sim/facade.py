"""The :class:`LibrarySimulation` facade over the composed kernel.

This is the compatibility surface of the original monolithic simulator:
every public attribute, method and legacy counter property that call sites
(CLI, benchmarks, service layer, tests) grew against is preserved here as
a thin delegation onto the :class:`~repro.core.sim.kernel.SimKernel` and
its subsystems. New code that doesn't need this surface should drive the
kernel directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ...library.layout import LibraryLayout
from ..events import Simulation
from ..metrics import MetricsRegistry, SimulationReport
from ..requests import SimRequest
from ..scheduler import RequestScheduler
from ..traffic import TrafficPolicy
from ...workload.traces import ReadRequest, ReadTrace
from .config import SimConfig
from .hooks import AdmissionLike, FaultScheduleLike, TracerLike
from .kernel import SimKernel
from .robotics import DriveSim, ShuttleSim


class LibrarySimulation:
    """Full-system simulation of one Silica library (facade).

    Composes the :mod:`repro.core.sim` kernel subsystems — robotics,
    dispatch, request lifecycle, faults, verification — over one shared
    :class:`~repro.core.sim.context.SimContext`, and re-exposes their
    state under the historical attribute names.
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        tracer: Optional[TracerLike] = None,
    ):
        self.kernel = SimKernel(config, tracer)

    # ------------------------------------------------------------------ #
    # Context views
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> SimConfig:
        """The run's configuration."""
        return self.kernel.config

    @property
    def sim(self) -> Simulation:
        """The discrete-event engine."""
        return self.kernel.ctx.sim

    @property
    def tracer(self) -> Optional[TracerLike]:
        """The structured-event tracer (None when disabled)."""
        return self.kernel.ctx.tracer

    @property
    def rng(self) -> np.random.Generator:
        """The run's single RNG stream."""
        return self.kernel.ctx.rng

    @property
    def metrics(self) -> MetricsRegistry:
        """The run's metrics registry."""
        return self.kernel.ctx.metrics

    @property
    def scheduler(self) -> RequestScheduler:
        """The per-platter request scheduler."""
        return self.kernel.ctx.scheduler

    @property
    def events_processed(self) -> int:
        """Events fired by the underlying engine so far."""
        return self.sim.events_processed

    @property
    def events_per_second(self) -> float:
        """Wall-clock event-loop throughput of the underlying engine."""
        return self.sim.events_per_second

    # ------------------------------------------------------------------ #
    # Robotics views
    # ------------------------------------------------------------------ #

    @property
    def layout(self) -> LibraryLayout:
        """The library's physical layout."""
        return self.kernel.robotics.layout

    @property
    def drives(self) -> List[DriveSim]:
        """Per-drive simulation state machines."""
        return self.kernel.robotics.drives

    @property
    def shuttles(self) -> List[ShuttleSim]:
        """Per-shuttle simulation wrappers."""
        return self.kernel.robotics.shuttles

    @property
    def policy(self) -> Optional[TrafficPolicy]:
        """The traffic-management policy (None for the NS baseline)."""
        return self.kernel.robotics.policy

    @property
    def platters(self) -> List[str]:
        """All platter ids, in set order."""
        return self.kernel.robotics.platters

    @property
    def _platter_index(self) -> Dict[str, int]:
        return self.kernel.robotics.platter_index

    @property
    def _home_slot(self) -> Dict[str, object]:
        return self.kernel.robotics.home_slot

    @property
    def _travel_times(self) -> List[float]:
        return self.kernel.robotics.travel_times

    # ------------------------------------------------------------------ #
    # Lifecycle views
    # ------------------------------------------------------------------ #

    @property
    def all_requests(self) -> List[SimRequest]:
        """Every (sub-)request the run has seen."""
        return self.kernel.lifecycle.all_requests

    @property
    def unavailable(self) -> Set[str]:
        """Currently unreachable platters."""
        return self.kernel.lifecycle.unavailable

    @property
    def admission(self) -> Optional[AdmissionLike]:
        """The ingress admission controller (tenancy runs only)."""
        return self.kernel.lifecycle.admission

    def assign_trace(
        self,
        trace: ReadTrace,
        measure_start: float,
        measure_end: float,
        skew: Optional[float] = None,
    ) -> None:
        """Map trace requests onto platters and schedule their arrivals."""
        self.kernel.lifecycle.assign_trace(trace, measure_start, measure_end, skew)

    def submit(self, request: ReadRequest, platter: str, measured: bool) -> None:
        """Submit one trace request directly to a chosen platter."""
        self.kernel.lifecycle.submit(request, platter, measured)

    def platter_set_of(self, platter_id: str) -> List[str]:
        """The erasure-coded platter set ``platter_id`` belongs to."""
        return self.kernel.lifecycle.platter_set_of(platter_id)

    # ------------------------------------------------------------------ #
    # Dispatch views
    # ------------------------------------------------------------------ #

    @property
    def _partition_cover(self) -> Dict[int, int]:
        return self.kernel.dispatch.partition_cover

    @property
    def _drive_override(self) -> Dict[int, int]:
        return self.kernel.dispatch.drive_override

    @property
    def _platter_partition(self) -> Dict[str, int]:
        return self.kernel.dispatch.platter_partition

    @property
    def _partition_load(self) -> Dict[int, float]:
        return self.kernel.dispatch.partition_load

    @property
    def _partition_heaps(self) -> Dict[int, List[Tuple[float, str]]]:
        return self.kernel.dispatch.partition_heaps

    @property
    def _global_heap(self) -> List[Tuple[float, str]]:
        return self.kernel.dispatch.global_heap

    def _covered_partitions(self, own_partition: int) -> List[int]:
        return self.kernel.dispatch.covered_partitions(own_partition)

    def _request_dispatch(self) -> None:
        self.kernel.dispatch.request_dispatch()

    # ------------------------------------------------------------------ #
    # Verification views
    # ------------------------------------------------------------------ #

    @property
    def verify_latencies(self) -> List[float]:
        """Completion latency of each verified platter."""
        return self.kernel.verification.verify_latencies

    @property
    def verify_backlog_bytes(self) -> float:
        """Bytes submitted for verification and not yet drained."""
        return self.kernel.verification.backlog_bytes

    def submit_verification(
        self, platter_bytes: float, time: Optional[float] = None
    ) -> None:
        """A freshly written platter joins the verification queue."""
        self.kernel.verification.submit_verification(platter_bytes, time)

    # ------------------------------------------------------------------ #
    # Fault views
    # ------------------------------------------------------------------ #

    @property
    def metadata_available(self) -> bool:
        """Whether the metadata service is currently up."""
        return self.kernel.faults.metadata_available

    def schedule_shuttle_failure(
        self, time: float, shuttle_id: int, repair_after: Optional[float] = None
    ) -> None:
        """Fail a shuttle at (or shortly after) ``time``."""
        self.kernel.faults.schedule_shuttle_failure(time, shuttle_id, repair_after)

    def schedule_drive_failure(
        self, time: float, drive_id: int, repair_after: Optional[float] = None
    ) -> None:
        """Fail a read drive at (or shortly after) ``time``."""
        self.kernel.faults.schedule_drive_failure(time, drive_id, repair_after)

    def schedule_metadata_outage(
        self, time: float, duration: Optional[float] = None
    ) -> None:
        """Take the metadata service down at ``time``."""
        self.kernel.faults.schedule_metadata_outage(time, duration)

    def apply_fault_schedule(self, schedule: FaultScheduleLike) -> None:
        """Arm every event of a fault schedule. Call before :meth:`run`."""
        self.kernel.faults.apply_fault_schedule(schedule)

    # ------------------------------------------------------------------ #
    # Legacy counter views (the registry is the source of truth)
    # ------------------------------------------------------------------ #

    @property
    def bytes_read(self) -> float:
        """Raw bytes scanned off glass by read drives."""
        return self.kernel.ctx.counters.bytes_read.value

    @property
    def recharges(self) -> int:
        """Shuttle battery recharge cycles started."""
        return int(self.kernel.ctx.counters.recharges.value)

    @property
    def failures_injected(self) -> int:
        """Component faults that actually fired."""
        return int(self.kernel.ctx.counters.faults_injected.value)

    @property
    def faults_repaired(self) -> int:
        """Faults whose repair clock returned the component."""
        return int(self.kernel.ctx.counters.faults_repaired.value)

    @property
    def metadata_retries(self) -> int:
        """Arrivals bounced off a metadata outage."""
        return int(self.kernel.ctx.counters.metadata_retries.value)

    @property
    def reread_retries(self) -> int:
        """Retry-ladder rung 1: in-place track re-reads."""
        return int(self.kernel.ctx.counters.reread.value)

    @property
    def deep_decodes(self) -> int:
        """Retry-ladder rung 2: deeper LDPC iteration budgets."""
        return int(self.kernel.ctx.counters.deep_decode.value)

    @property
    def recovery_escalations(self) -> int:
        """Retry-ladder rung 3: escalations to cross-platter recovery."""
        return int(self.kernel.ctx.counters.escalations.value)

    @property
    def recovery_bytes_read(self) -> float:
        """Raw bytes read by cross-platter NC recovery sub-reads."""
        return self.kernel.ctx.counters.recovery_bytes.value

    @property
    def requests_lost(self) -> int:
        """Reads abandoned with no surviving recovery peer."""
        return int(self.kernel.ctx.counters.requests_lost.value)

    # ------------------------------------------------------------------ #
    # Run + report
    # ------------------------------------------------------------------ #

    def run(
        self, until: Optional[float] = None, max_events: int = 50_000_000
    ) -> SimulationReport:
        """Run the event loop to quiescence (or ``until``) and report."""
        return self.kernel.run(until=until, max_events=max_events)

    def report(self) -> SimulationReport:
        """Snapshot the run into a :class:`SimulationReport`."""
        return self.kernel.report()
