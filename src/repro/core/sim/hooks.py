"""Hook seams: the protocols outer layers implement to plug into the kernel.

The ``core.sim`` kernel is the bottom of the simulator stack; it must not
import :mod:`repro.tenancy`, :mod:`repro.faults`, :mod:`repro.observability`
or :mod:`repro.service` (enforced by ``tools/check_layers.py``). Anything
those layers contribute — tracing, admission control, QoS fetch priorities,
fault schedules — enters through the structural protocols below: the outer
layer hands the kernel an object satisfying the protocol, and the kernel
programs against the protocol alone. This is the generalization of the
original ``tracer`` / ``observer`` hooks, and it is what lets a worker
process run N kernels without dragging the whole service stack along.

All protocols are ``runtime_checkable`` so subsystem unit tests can assert
their stubs actually satisfy the seam they stub.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterator,
    Optional,
    Protocol,
    runtime_checkable,
)


@runtime_checkable
class TracerLike(Protocol):
    """Structured-event sink (the :class:`repro.observability.Tracer` seam).

    The kernel only ever checks ``enabled`` once at construction and calls
    ``emit`` afterwards; a disabled tracer costs a single pointer
    comparison per emission site.
    """

    @property
    def enabled(self) -> bool:
        """Whether this tracer records events at all."""
        ...

    def emit(self, time: float, kind: str, **attrs: object) -> None:
        """Record one structured event at simulated ``time``."""
        ...


@runtime_checkable
class FetchPolicyLike(Protocol):
    """Platter-fetch priority policy (the :mod:`repro.tenancy.qos` seam).

    Maps a queued request to a static priority key (smaller is more
    urgent). The scheduler's built-in arrival-order policy satisfies this
    protocol too; the deadline-aware QoS policy is the tenancy layer's
    implementation.
    """

    name: str
    #: Whether a priority improvement on an already-pending platter should
    #: republish its fetch candidacy (deadline policies must; arrival order
    #: declines to preserve the historical §4.1 dispatch order).
    refresh_on_improvement: bool

    def key(self, request: object) -> float:
        """Priority key for one request (smaller fetches sooner)."""
        ...


@runtime_checkable
class AdmissionLike(Protocol):
    """Ingress admission control (the :mod:`repro.tenancy.admission` seam)."""

    def admit(self, tenant: str, size_bytes: int, now: float) -> bool:
        """Charge the tenant's quota; False rejects the read at ingress."""
        ...

    def stats_dict(self) -> Dict[str, object]:
        """Per-tenant admit/reject accounting for the QoS report."""
        ...


@runtime_checkable
class TenancyLike(Protocol):
    """Tenant registry (the :mod:`repro.tenancy.model` seam).

    ``SimConfig.tenancy`` holds an object satisfying this protocol; the
    kernel resolves its admission controller and fetch policy through the
    two factory methods so it never imports the tenancy package itself.
    """

    def class_of(self, tenant: str) -> object:
        """The tenant's SLO class (``.name`` / ``.deadline_seconds``)."""
        ...

    def admission_controller(self) -> AdmissionLike:
        """A fresh ingress admission controller over this registry."""
        ...

    def fetch_policy_for(self, name: str) -> Optional[FetchPolicyLike]:
        """The named platter-fetch policy bound to this registry."""
        ...


@runtime_checkable
class FaultEventLike(Protocol):
    """One scheduled component fault (the :mod:`repro.faults` seam).

    ``component`` needs only a ``value`` attribute naming the component
    class (``"shuttle"`` / ``"read_drive"`` / ``"metadata"``), which the
    :class:`repro.faults.ComponentKind` enum provides.
    """

    component: object
    target: int
    start: float
    duration: float

    @property
    def repairs(self) -> bool:
        """Whether the fault carries a finite repair clock."""
        ...


class FaultScheduleLike(Protocol):
    """An iterable of fault events, armed via ``apply_fault_schedule``."""

    def __iter__(self) -> Iterator[FaultEventLike]:
        """Yield the schedule's events (any order; each is armed once)."""
        ...


@runtime_checkable
class DispatchPolicy(Protocol):
    """One controller dispatch strategy (silica / sp / ns).

    ``run`` performs a full dispatch pass — assigning idle shuttles (and,
    for the no-shuttle baseline, free drives) to pending work — against the
    :class:`~repro.core.sim.dispatch.DispatchSubsystem` shared machinery.
    """

    name: str

    def run(self, dispatch: "DispatchSubsystemLike") -> None:
        """Execute one dispatch pass over the subsystem's state."""
        ...


class DispatchSubsystemLike(Protocol):
    """The slice of the dispatch subsystem a :class:`DispatchPolicy` uses."""

    def dispatch_returns(self) -> None:
        """Assign idle shuttles to platters awaiting return."""
        ...


#: A zero-argument callback (arrival retries, dispatch requests, ...).
Thunk = Callable[[], None]
