"""Verification subsystem: the fluid read-back queue (Section 3.1).

Freshly written platters queue for full read-back; the read drives' idle
(non-customer) time drains the queue at aggregate throughput. Tracked as a
fluid integrator updated at every drive state change, so verification
costs zero events while drives are idle and the per-platter completion
latency is still exact (linear interpolation within each drain segment).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .context import SimContext

#: Event labels this subsystem schedules: the "verification" bucket of
#: the subsystem wall-share table.
VERIFICATION_EVENT_LABELS = frozenset({"verify-arrival"})


class VerificationSubsystem:
    """Fluid-approximation model of background platter verification."""

    def __init__(self, ctx: SimContext, num_drives: int):
        self.ctx = ctx
        self.num_drives = num_drives
        self._verifying_drives = num_drives
        self._verify_rate_per_drive = ctx.config.drive_throughput_mbps * 1e6
        self._last_verify_update = 0.0
        self._verify_drained = 0.0
        self._verify_queue: List[Tuple[float, float, float]] = []  # (arrival, bytes, cum_end)
        self._verify_cum_demand = 0.0
        self.verify_latencies: List[float] = []

    def submit_verification(
        self, platter_bytes: float, time: Optional[float] = None
    ) -> None:
        """A freshly written platter joins the verification queue.

        Its full capacity must be read back by the read drives' idle time;
        the completion latency lands in :attr:`verify_latencies`.
        """
        ctx = self.ctx

        def arrive() -> None:
            self.update_fluid()
            self._verify_cum_demand += platter_bytes
            self._verify_queue.append(
                (ctx.sim.now, platter_bytes, self._verify_cum_demand)
            )
            if ctx.tracer is not None:
                ctx.tracer.emit(
                    ctx.sim.now,
                    "verify.submit",
                    bytes=platter_bytes,
                    backlog_bytes=self.backlog_bytes,
                )

        if time is None or time <= ctx.sim.now:
            arrive()
        else:
            ctx.sim.schedule_at(time, arrive, label="verify-arrival")

    @property
    def backlog_bytes(self) -> float:
        """Bytes submitted for verification and not yet drained."""
        return max(0.0, self._verify_cum_demand - self._verify_drained)

    def update_fluid(self) -> None:
        """Advance the fluid drain to `now` and pop completed platters."""
        now = self.ctx.sim.now
        dt = now - self._last_verify_update
        if dt > 0 and self._verifying_drives > 0:
            rate = self._verifying_drives * self._verify_rate_per_drive
            before = self._verify_drained
            self._verify_drained += rate * dt
            while self._verify_queue and self._verify_queue[0][2] <= self._verify_drained:
                arrival, _bytes, cum_end = self._verify_queue.pop(0)
                # Interpolate the exact completion instant within [last, now].
                completed_at = self._last_verify_update + (cum_end - before) / rate
                self.verify_latencies.append(max(0.0, completed_at - arrival))
        self._last_verify_update = now

    def drive_stops_verifying(self) -> None:
        """A drive left the verification pool (customer work or failure)."""
        self.update_fluid()
        self._verifying_drives = max(0, self._verifying_drives - 1)

    def drive_resumes_verifying(self) -> None:
        """A drive rejoined the verification pool."""
        self.update_fluid()
        self._verifying_drives = min(self.num_drives, self._verifying_drives + 1)
