"""Dispatch subsystem: assigning shuttles and drives to pending work.

Owns the controller's dispatch machinery — the coalesced zero-delay
dispatch event, the fetch-candidate indexes (per-partition heaps for the
Silica policy, one global heap for the SP/NS baselines, both lazily
invalidated), the partition routing tables that failure handling rewrites
(partition cover, drive overrides), and the per-partition load estimates
that drive work stealing.

The three §4.1/§7.2 dispatch strategies — :class:`SilicaDispatch`
(partitioned, work-stealing), :class:`ShortestPathsDispatch` (free-roaming
SP baseline) and :class:`NoShuttleDispatch` (teleporting NS lower bound) —
implement the :class:`~repro.core.sim.hooks.DispatchPolicy` protocol and
are interchangeable behind it.

Dispatch is *incremental* by default: the quantities a pass needs are
maintained under dirty-flag invalidation rather than recomputed per event.

* **Cover index** (`owner partition -> covered partitions`) — rebuilt only
  after the fault subsystem rewrites ``partition_cover`` (shuttle
  failure/repair) via :meth:`DispatchSubsystem.invalidate_cover`.
* **Drive routes** (`partition -> serving drive`) — rebuilt only after a
  drive failure/repair rewrites ``drive_override`` via
  :meth:`DispatchSubsystem.invalidate_routing`.
* **Steal donors** — the work-stealing donor list is a pure function of
  ``partition_load``, so it is cached and invalidated exactly where the
  loads change (:meth:`DispatchSubsystem.note_enqueued` /
  :meth:`DispatchSubsystem.reduce_partition_load`).
* **Candidate entry counts** — live entry totals for the partition and
  global heaps (pure push/pop bookkeeping, stale entries included) let a
  pass skip candidate probing outright when the indexes are empty.
* **Pending returns** — a counter maintained at the two transitions
  (service finishes / return assigned) lets a pass skip the all-drives
  return scan when nothing awaits return.
* **Idle short-circuit** — a pass with no idle shuttle provably assigns
  nothing (every assignment needs one), so it exits before touching any
  index. The dispatch *event* still fires: pending faults are released at
  that boundary first, which the short-circuit must not skip.

Every cache answers exactly what the per-event rescan would have computed
— ``SimConfig.incremental_dispatch=False`` selects the rescan reference
path, and the golden-replay suite pins the two byte-identical.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ...library.layout import SlotId
from ...library.shuttle import Shuttle, ShuttleState
from ..scheduler import pop_min_valid
from ..traffic import PartitionedPolicy
from .context import SimContext
from .hooks import DispatchPolicy
from .robotics import DriveSim, RoboticsSubsystem, ShuttleSim

if TYPE_CHECKING:  # pragma: no cover
    from .faults import FaultSubsystem
    from .lifecycle import RequestLifecycle

#: Hoisted for the per-pass idle scan's inlined state check.
_FAILED = ShuttleState.FAILED

#: Event labels this subsystem schedules — the dispatch bucket of the
#: phase profiler's subsystem wall-share table (kept next to the
#: ``schedule`` sites so the attribution cannot drift from the code).
DISPATCH_EVENT_LABELS = frozenset({"dispatch"})


class SilicaDispatch:
    """Partitioned dispatch (§4.1): each shuttle serves its own partitions,
    stealing from overloaded donors when its own heaps run dry."""

    name = "silica"

    def run(self, d: "DispatchSubsystem") -> None:
        """Assign idle shuttles to returns, then partition fetches."""
        robotics = d.robotics
        if d.idle_short_circuit():
            return
        d.dispatch_returns()
        policy = robotics.policy
        assert isinstance(policy, PartitionedPolicy)
        ctx = d.ctx
        incremental = d.incremental
        heaps = d.partition_heaps
        if incremental:
            # Pass-level fetch guard: with nothing queued anywhere, or no
            # drive customer slot free anywhere, no shuttle can be handed
            # a fetch — the only remaining pass duty is the recharge
            # check, which the memo makes one attribute read per shuttle.
            # (Flushing slot notes first is pure cache maintenance.)
            if d._slot_dirty or d._free_pids is None:
                d.free_partitions()
            if not d._partition_entries or not d._free_pids:
                for shuttle_sim in d.shuttle_pool():
                    if not shuttle_sim.busy and not shuttle_sim.no_recharge_memo:
                        d.maybe_recharge(shuttle_sim)
                return
        # Donor ranking never changes within a pass (loads mutate in other
        # events), so compute it lazily at most once per pass.
        donors: Optional[List[int]] = None
        for shuttle_sim in d.shuttle_pool():
            if incremental:
                # Pool members passed the idle scan; only ``busy`` can flip
                # mid-pass (assignments below), so one attribute check
                # replaces the full idle re-check.
                if shuttle_sim.busy:
                    continue
                if not shuttle_sim.no_recharge_memo and d.maybe_recharge(
                    shuttle_sim
                ):
                    continue
                if not d._partition_entries:
                    # Every partition heap is empty (live entry count is
                    # pure push/pop bookkeeping): no probe or steal can
                    # succeed.
                    continue
                # Flush slot notes (an assignment below posts one for the
                # drive it reserves), then consult the owner refcount: no
                # free drive among this shuttle's covered partitions means
                # no fetch can be placed — steals mount on the thief's own
                # drives too.
                if d._slot_dirty or d._free_pids is None:
                    d.free_partitions()
                shuttle = shuttle_sim.shuttle
                if not d._free_owner_count.get(shuttle.partition):
                    continue
                free_pids = d._free_pids
            else:
                if not shuttle_sim.idle:
                    continue
                if d.maybe_recharge(shuttle_sim):
                    continue
                free_pids = None
                shuttle = shuttle_sim.shuttle
            for pid in d.covered_partitions(shuttle.partition):
                if free_pids is not None:
                    if pid not in free_pids:
                        continue
                    # ``free_pids`` membership already proves this
                    # partition's drive exists and has a free customer
                    # slot; the route lookup is deferred until a platter
                    # is actually in hand (most probes find empty heaps).
                    drive = None
                else:
                    drive = d.partition_drive(pid)
                    if drive is None or not drive.customer_slot_free:
                        continue
                # An empty heap can't yield a candidate and popping it has
                # no side effects — skip the call on the common dry probe.
                own_heap = heaps[pid]
                platter = d.pop_candidate(own_heap) if own_heap else None
                stolen = False
                if platter is None and policy.work_stealing:
                    if donors is None:
                        donors = d.steal_donors()
                    for donor in donors:
                        if donor == pid:
                            continue
                        donor_heap = heaps[donor]
                        if not donor_heap:
                            continue
                        platter = d.pop_candidate(donor_heap)
                        if platter is not None:
                            stolen = True
                            break
                if platter is None:
                    continue
                if drive is None:
                    drive = d.partition_drive(pid)
                if stolen:
                    policy.steals += 1
                    ctx.counters.steals.inc()
                    if ctx.tracer is not None:
                        ctx.tracer.emit(
                            ctx.sim.now,
                            "sched.steal",
                            component=f"shuttle:{shuttle.shuttle_id}",
                            platter=platter,
                            partition=pid,
                        )
                ctx.counters.dispatch_assignments.inc()
                robotics.start_fetch(shuttle_sim, platter, drive)
                break  # this shuttle is busy now


class ShortestPathsDispatch:
    """The SP baseline: any idle shuttle fetches the globally most urgent
    platter via shortest paths — no partitioning, congestion included."""

    name = "sp"

    def run(self, d: "DispatchSubsystem") -> None:
        """Assign idle shuttles to returns, then nearest-shuttle fetches."""
        robotics = d.robotics
        if d.idle_short_circuit():
            return
        d.dispatch_returns()
        pool = d.shuttle_pool()
        for shuttle_sim in pool:
            if shuttle_sim.idle:
                d.maybe_recharge(shuttle_sim)
        while True:
            idle = [s for s in pool if s.idle]
            if not idle:
                return
            if not any(dr.customer_slot_free for dr in robotics.drives):
                return
            platter = d.pop_candidate(d.global_heap)
            if platter is None:
                return
            slot = robotics.layout.locate(platter)
            slot_pos = robotics.layout.slot_position(slot)
            shuttle_sim = min(
                idle,
                key=lambda s: abs(s.shuttle.position.x - slot_pos.x)
                + 0.5 * abs(s.shuttle.position.level - slot_pos.level),
            )
            drive = d.drive_for(shuttle_sim.shuttle, slot)
            if drive is None:
                # No free drive after all; put the candidate back.
                d.push_candidate(
                    platter, d.ctx.scheduler.priority_for(platter) or 0.0
                )
                return
            d.ctx.counters.dispatch_assignments.inc()
            robotics.start_fetch(shuttle_sim, platter, drive)


class NoShuttleDispatch:
    """The NS baseline: platters teleport into free drives — the lower
    bound on shuttle overhead."""

    name = "ns"

    def run(self, d: "DispatchSubsystem") -> None:
        """Mount the most urgent pending platters into free drives."""
        robotics = d.robotics
        while True:
            free_drives = [dr for dr in robotics.drives if dr.customer_slot_free]
            if not free_drives:
                return
            platter = d.pop_candidate(d.global_heap)
            if platter is None:
                return
            drive = free_drives[0]
            d.ctx.scheduler.begin_service(platter)
            d.ctx.counters.dispatch_assignments.inc()
            robotics.on_customer_arrival(drive, platter)


_DISPATCH_POLICIES = {
    "silica": SilicaDispatch,
    "sp": ShortestPathsDispatch,
    "ns": NoShuttleDispatch,
}


def dispatch_policy_for(name: str) -> DispatchPolicy:
    """The dispatch strategy registered under ``name`` (silica/sp/ns)."""
    return _DISPATCH_POLICIES[name]()


class DispatchSubsystem:
    """Controller dispatch: candidate indexes, routing tables, the loop."""

    def __init__(
        self,
        ctx: SimContext,
        robotics: RoboticsSubsystem,
        lifecycle: "RequestLifecycle",
    ):
        self.ctx = ctx
        self.robotics = robotics
        self.lifecycle = lifecycle
        # Fetch-candidate indexes: per-partition heaps (Silica) and a global
        # heap (SP/NS), holding (fetch priority, platter) with lazy
        # invalidation. Priority is the scheduler policy's key — earliest
        # queued arrival by default, weighted-deadline urgency under QoS.
        self.platter_partition: Dict[str, int] = {}
        self.partition_heaps: Dict[int, List[Tuple[float, str]]] = {}
        self.partition_load: Dict[int, float] = {}
        policy = robotics.policy
        if isinstance(policy, PartitionedPolicy):
            for platter, slot in robotics.home_slot.items():
                self.platter_partition[platter] = policy.partition_of_slot(slot)
            for p in policy.partitions:
                self.partition_heaps[p.index] = []
                self.partition_load[p.index] = 0.0
        self.global_heap: List[Tuple[float, str]] = []
        # Failure-routing tables: which shuttle covers each partition
        # (self-coverage initially) and per-partition drive re-routing.
        self.partition_cover: Dict[int, int] = {}
        if isinstance(policy, PartitionedPolicy):
            for p in policy.partitions:
                self.partition_cover[p.index] = p.index
        self.drive_override: Dict[int, int] = {}
        self._dispatch_scheduled = False
        self.policy: DispatchPolicy = dispatch_policy_for(ctx.config.policy)
        #: False selects the per-event full-rescan reference path (see the
        #: module docstring); the caches below then sit unused.
        self.incremental: bool = getattr(
            ctx.config, "incremental_dispatch", True
        )
        # Dirty-flagged caches. Each is invalidated at the state transition
        # that changes its inputs and rebuilt lazily on next use:
        #   cover index   <- partition_cover     (shuttle failure/repair)
        #   drive routes  <- drive_override + drive.failed (drive fail/repair)
        #   steal donors  <- partition_load      (enqueue / serve / withdraw)
        self._cover_index: Dict[int, List[int]] = {}
        self._cover_dirty = True
        self._route_cache: Dict[int, Optional[DriveSim]] = {}
        self._routes_dirty = True
        # Free-partition set: partitions whose routed drive has a free
        # customer slot. None = rebuild wholesale (routing changed);
        # otherwise patched per drive via the slot-transition notes the
        # robotics subsystem posts (:meth:`note_drive_slot`).
        self._free_pids: Optional[set] = None
        self._drive_pids: Dict[int, List[int]] = {}
        self._slot_dirty: List[DriveSim] = []
        # Per-owner refcount over the free set: how many of the partitions
        # covered by each owner (``partition_cover`` value) are free. Zero
        # lets a pass skip a shuttle without walking its covered list.
        self._free_owner_count: Dict[int, int] = {}
        self._steal_donors: Optional[List[int]] = None
        # Candidate-validity closure cache for :meth:`pop_candidate`. The
        # closure binds the scheduler, the lifecycle's unavailable set, and
        # the layout's locate method — the latter two are stable object
        # identities for the life of the run, so the cache is keyed on the
        # scheduler alone (the kernel swaps it in during composition).
        self._pop_valid: Optional[Callable[[str], bool]] = None
        self._pop_valid_scheduler: Optional[object] = None
        #: The current pass's idle-shuttle scan result (see
        #: :meth:`idle_short_circuit` / :meth:`shuttle_pool`).
        self._idle_pass: Optional[List[ShuttleSim]] = None
        # Live entry counts for the candidate indexes (stale entries
        # included — pure heap bookkeeping, maintained by push/pop). Zero
        # partition entries proves every partition-heap pop would miss, so
        # a pass skips candidate probing and steal ranking entirely.
        self._partition_entries = 0
        self._global_entries = 0
        #: Drives holding a finished platter with no return assigned yet —
        #: maintained by :meth:`note_return_pending` / the assignment in
        #: :meth:`dispatch_returns` so a pass can skip the return scan.
        self.unassigned_returns = 0
        self._pending_returns: List[DriveSim] = []
        # Scan-order rank of each drive: pending returns are visited in
        # the same order the rescan's all-drives sweep would find them.
        self._drive_order: Dict[int, int] = {
            d.drive_id: i for i, d in enumerate(robotics.drives)
        }
        # Bound by :meth:`wire` during composition.
        self.faults: "FaultSubsystem" = None  # type: ignore[assignment]

    def wire(self, faults: "FaultSubsystem") -> None:
        """Bind the fault subsystem (pending faults fire at dispatch)."""
        self.faults = faults

    # ------------------------------------------------------------------ #
    # The dispatch loop
    # ------------------------------------------------------------------ #

    def request_dispatch(self) -> None:
        """Coalesce dispatch work onto a single zero-delay event."""
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True

        def run() -> None:
            self._dispatch_scheduled = False
            self._dispatch()

        self.ctx.sim.schedule(0.0, run, label="dispatch")

    def _dispatch(self) -> None:
        # Faults that found their component busy fire here, at the next
        # operation boundary, *before* new work is assigned — the
        # event-driven replacement for the old fixed-interval retry poll.
        self.faults.fire_pending_faults()
        self.ctx.counters.dispatch_passes.inc()
        self.policy.run(self)

    def idle_short_circuit(self) -> bool:
        """True when this pass can exit before touching any index.

        With no idle shuttle a pass provably assigns nothing: returns,
        recharges and fetches all require one. Only taken on the
        incremental path — the rescan reference walks everything — and
        counted, so the short-circuit rate is visible in the metrics.

        When the pass proceeds, the scan's survivors are kept as the
        pass's shuttle pool (:meth:`shuttle_pool`): shuttles busy at the
        start of a pass cannot turn idle mid-pass (only events do that),
        so iterating the pool with a live ``idle`` re-check visits exactly
        the shuttles the full scan would.
        """
        if not self.incremental:
            return False
        idle = [
            s
            for s in self.robotics.shuttles
            # Inlined ShuttleSim.idle (machines.py) — this scan runs per
            # pass over every shuttle, where two property hops dominate.
            if not s.busy and s.shuttle.state is not _FAILED
        ]
        if idle:
            self._idle_pass = idle
            return False
        self.ctx.counters.dispatch_short_circuits.inc()
        return True

    def shuttle_pool(self) -> List[ShuttleSim]:
        """Shuttles a policy pass should visit (callers re-check ``idle``).

        The incremental path reuses :meth:`idle_short_circuit`'s scan —
        order-preserving, so assignment order matches the full scan; the
        rescan reference walks every shuttle.
        """
        if self.incremental and self._idle_pass is not None:
            return self._idle_pass
        return self.robotics.shuttles

    # ------------------------------------------------------------------ #
    # Returns
    # ------------------------------------------------------------------ #

    def note_return_pending(self, drive: DriveSim) -> None:
        """A drive's service finished: its platter now awaits a return trip."""
        self.unassigned_returns += 1
        if self.incremental:
            # The rescan reference finds pending returns by sweeping all
            # drives, so only incremental runs feed (and drain) the list.
            self._pending_returns.append(drive)

    def dispatch_returns(self) -> None:
        """Assign idle shuttles to drives with a platter awaiting return.

        Incremental passes walk only the pending-return list — in drive
        scan-order rank, so assignments land in the same order as the
        rescan's all-drives sweep. A drive leaves the list exactly when the
        sweep would start skipping it (``return_assigned``; the flag holds
        until the platter is picked, after which ``awaiting_return`` is
        gone), so list membership mirrors the sweep's filter.
        """
        if self.incremental:
            pending = self._pending_returns
            if not pending:
                return
            if len(pending) > 1:
                order = self._drive_order
                pending.sort(key=lambda d: order[d.drive_id])
            remaining: List[DriveSim] = []
            for drive in pending:
                shuttle = self.shuttle_for_return(drive)
                if shuttle is None:
                    remaining.append(drive)
                    continue
                drive.return_assigned = True
                self.unassigned_returns -= 1
                self.ctx.counters.dispatch_assignments.inc()
                self.robotics.start_return(shuttle, drive)
            self._pending_returns = remaining
            return
        for drive in self.robotics.drives:
            if drive.awaiting_return is None or drive.return_assigned:
                continue
            shuttle = self.shuttle_for_return(drive)
            if shuttle is None:
                continue
            drive.return_assigned = True
            self.unassigned_returns -= 1
            self.ctx.counters.dispatch_assignments.inc()
            self.robotics.start_return(shuttle, drive)

    def shuttle_for_return(self, drive: DriveSim) -> Optional[ShuttleSim]:
        """The shuttle responsible for returning the drive's platter."""
        platter = drive.awaiting_return
        robotics = self.robotics
        pool = self.shuttle_pool()
        if isinstance(robotics.policy, PartitionedPolicy):
            partition = self.platter_partition[platter]
            cover = self.partition_cover.get(partition, partition)
            for s in pool:
                # Partition compare first: it is a plain attribute chain,
                # while ``idle`` is a property call — and most pool members
                # are the wrong partition.
                if s.shuttle.partition == cover and s.idle:
                    return s
            return None
        idle = [s for s in pool if s.idle]
        if not idle:
            return None
        return min(idle, key=lambda s: abs(s.shuttle.position.x - drive.position.x))

    # ------------------------------------------------------------------ #
    # Candidate indexes
    # ------------------------------------------------------------------ #

    def push_candidate(self, platter: str, priority: float) -> None:
        """Publish a platter's fetch candidacy at the given priority.

        Incremental runs push to exactly the index the active policy pops
        — the partition heap under the partitioned policy (whose global
        heap is never consumed, so feeding it only leaks memory), the
        global heap otherwise. The rescan reference keeps the legacy
        dual-push for fidelity with the pre-incremental simulator.
        """
        entry = (priority, platter)
        pid = self.platter_partition.get(platter)
        if not self.incremental:
            heapq.heappush(self.global_heap, entry)
            if pid is not None:
                heapq.heappush(self.partition_heaps[pid], entry)
            return
        if pid is not None:
            heapq.heappush(self.partition_heaps[pid], entry)
            self._partition_entries += 1
        else:
            heapq.heappush(self.global_heap, entry)
            self._global_entries += 1

    def pop_candidate(self, heap: List[Tuple[float, str]]) -> Optional[str]:
        """Earliest valid pending platter from a heap (lazy invalidation).

        Entries for platters that were serviced, are currently in service,
        or are unreachable are discarded (the
        :func:`~repro.core.scheduler.pop_min_valid` contract); in-service
        platters with new pending work are re-pushed when their service
        ends.
        """
        scheduler = self.ctx.scheduler
        valid = self._pop_valid
        if valid is None or self._pop_valid_scheduler is not scheduler:
            unavailable = self.lifecycle.unavailable
            locate = self.robotics.layout.locate

            def valid(platter: str) -> bool:
                """True when ``platter`` is still a live fetch candidate."""
                return (
                    scheduler.has_work(platter)
                    and not scheduler.in_service(platter)
                    and platter not in unavailable
                    and locate(platter) is not None
                )

            self._pop_valid = valid
            self._pop_valid_scheduler = scheduler

        before = len(heap)
        chosen = pop_min_valid(heap, valid)
        removed = before - len(heap)
        if removed:
            if heap is self.global_heap:
                self._global_entries -= removed
            else:
                self._partition_entries -= removed
        return chosen

    def end_service(self, platter: str) -> None:
        """Platter is back on its shelf: re-arm fetch candidacy."""
        scheduler = self.ctx.scheduler
        scheduler.end_service(platter)
        priority = scheduler.priority_for(platter)
        if priority is not None:
            self.push_candidate(platter, priority)

    # ------------------------------------------------------------------ #
    # Partition load (work stealing)
    # ------------------------------------------------------------------ #

    def note_enqueued(self, platter: str, size_bytes: float) -> None:
        """Account newly queued bytes to the platter's partition load."""
        pid = self.platter_partition.get(platter)
        if pid is not None:
            self.partition_load[pid] += size_bytes
            self._steal_donors = None

    def reduce_partition_load(self, platter: str, size_bytes: float) -> None:
        """Remove served or withdrawn bytes from the partition load."""
        pid = self.platter_partition.get(platter)
        if pid is not None:
            self.partition_load[pid] = max(
                0.0, self.partition_load[pid] - size_bytes
            )
            self._steal_donors = None

    def steal_donors(self) -> List[int]:
        """Work-stealing donor partitions, most loaded first.

        A pure function of ``partition_load``, so the policy's ranking is
        cached until the loads next change — every load mutation runs
        through :meth:`note_enqueued` / :meth:`reduce_partition_load`,
        which drop the cache. Loads never change *within* a pass (serves
        and withdrawals happen in other events), so the per-shuttle calls
        the rescan path makes all return this same list.
        """
        policy = self.robotics.policy
        assert isinstance(policy, PartitionedPolicy)
        if not self.incremental:
            return policy.steal_candidates(self.partition_load)
        if self._steal_donors is None:
            self._steal_donors = policy.steal_candidates(self.partition_load)
        return self._steal_donors

    # ------------------------------------------------------------------ #
    # Routing (failure-aware)
    # ------------------------------------------------------------------ #

    def invalidate_cover(self) -> None:
        """``partition_cover`` was rewritten (shuttle failure/repair)."""
        self._cover_dirty = True
        # The free-set owner refcounts key on the cover mapping, so a
        # cover rewrite forces a wholesale rebuild of both.
        self._free_pids = None

    def invalidate_routing(self) -> None:
        """Drive topology changed (failure/repair or override rewrite)."""
        self._routes_dirty = True
        self._free_pids = None

    def note_drive_slot(self, drive: DriveSim) -> None:
        """A drive's customer-slot occupancy may have changed.

        Robotics posts this at every slot transition (fetch reserve, mount,
        return pick, unmount); the free-partition set patches itself from
        the note queue on next read.
        """
        if self._free_pids is not None:
            self._slot_dirty.append(drive)

    def free_partitions(self) -> set:
        """Partitions whose routed drive can accept a fetch right now.

        ``pid in free_partitions()`` is exactly ``partition_drive(pid) is
        not None and partition_drive(pid).customer_slot_free``: the set is
        rebuilt wholesale after routing changes and patched per posted
        slot note otherwise. Callers re-read it after every assignment —
        an in-pass fetch posts a note for the drive it just reserved.
        """
        free = self._free_pids
        cover = self.partition_cover
        owners = self._free_owner_count
        if free is None:
            index: Dict[int, List[int]] = {}
            free = set()
            owners.clear()
            for pid in cover:
                drive = self.partition_drive(pid)
                if drive is None:
                    continue
                index.setdefault(drive.drive_id, []).append(pid)
                if drive.customer_slot_free:
                    free.add(pid)
                    own = cover[pid]
                    owners[own] = owners.get(own, 0) + 1
            self._drive_pids = index
            self._free_pids = free
            del self._slot_dirty[:]
            return free
        dirty = self._slot_dirty
        if dirty:
            for drive in dirty:
                pids = self._drive_pids.get(drive.drive_id)
                if not pids:
                    continue
                if drive.customer_slot_free:
                    for pid in pids:
                        if pid not in free:
                            free.add(pid)
                            own = cover[pid]
                            owners[own] = owners.get(own, 0) + 1
                else:
                    for pid in pids:
                        if pid in free:
                            free.remove(pid)
                            owners[cover[pid]] -= 1
            del dirty[:]
        return free

    def maybe_recharge(self, shuttle_sim: ShuttleSim) -> bool:
        """Recharge check with the idle-battery memo.

        An idle shuttle drains no battery, so once a check says "no
        recharge needed" the answer holds until the shuttle next works (or
        is repaired) — those transitions clear the memo. The rescan
        reference re-asks robotics every pass.
        """
        if self.incremental and shuttle_sim.no_recharge_memo:
            return False
        if self.robotics.maybe_recharge(shuttle_sim):
            return True
        shuttle_sim.no_recharge_memo = True
        return False

    def covered_partitions(self, own_partition: int) -> List[int]:
        """Partitions this shuttle serves: its own plus any adopted from
        failed shuttles (controller reassignment).

        Incremental passes answer from the cover index; the index groups
        ``partition_cover`` in its iteration order, so each owner's list is
        byte-identical with the rescan's filtered scan.
        """
        if not self.incremental:
            return [
                pid
                for pid, cover in self.partition_cover.items()
                if cover == own_partition
            ]
        if self._cover_dirty:
            index: Dict[int, List[int]] = {}
            for pid, cover in self.partition_cover.items():
                index.setdefault(cover, []).append(pid)
            self._cover_index = index
            self._cover_dirty = False
        return self._cover_index.get(own_partition, [])

    def partition_drive(self, pid: int) -> Optional[DriveSim]:
        """The partition's drive, honouring failure re-routing.

        Routes are cached per partition between topology changes; the
        live ``customer_slot_free`` check stays with the caller. A failed
        drive resolves to None — and every ``drive.failed`` flip runs the
        fault subsystem's rerouting, which drops this cache.
        """
        if not self.incremental:
            return self._route_for(pid)
        if self._routes_dirty:
            self._route_cache = {}
            self._routes_dirty = False
        cache = self._route_cache
        if pid in cache:
            return cache[pid]
        drive = self._route_for(pid)
        cache[pid] = drive
        return drive

    def _route_for(self, pid: int) -> Optional[DriveSim]:
        """Resolve a partition's serving drive from the routing tables."""
        robotics = self.robotics
        assert isinstance(robotics.policy, PartitionedPolicy)
        drive_id = self.drive_override.get(
            pid, robotics.policy.partitions[pid].drive_id
        )
        if drive_id >= len(robotics.drives):
            return None
        drive = robotics.drives[drive_id]
        return None if drive.failed else drive

    def drive_for(self, shuttle: Shuttle, slot: SlotId) -> Optional[DriveSim]:
        """A free drive for an SP fetch, chosen by the traffic policy."""
        robotics = self.robotics

        def free(drive_id: int) -> bool:
            return (
                drive_id < len(robotics.drives)
                and robotics.drives[drive_id].customer_slot_free
            )

        drive_id = robotics.policy.drive_for(shuttle, slot, free)
        if drive_id is None:
            return None
        return robotics.drives[drive_id]
