"""Dispatch subsystem: assigning shuttles and drives to pending work.

Owns the controller's dispatch machinery — the coalesced zero-delay
dispatch event, the fetch-candidate indexes (per-partition heaps for the
Silica policy, one global heap for the SP/NS baselines, both lazily
invalidated), the partition routing tables that failure handling rewrites
(partition cover, drive overrides), and the per-partition load estimates
that drive work stealing.

The three §4.1/§7.2 dispatch strategies — :class:`SilicaDispatch`
(partitioned, work-stealing), :class:`ShortestPathsDispatch` (free-roaming
SP baseline) and :class:`NoShuttleDispatch` (teleporting NS lower bound) —
implement the :class:`~repro.core.sim.hooks.DispatchPolicy` protocol and
are interchangeable behind it.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ...library.layout import SlotId
from ...library.shuttle import Shuttle
from ..traffic import PartitionedPolicy
from .context import SimContext
from .hooks import DispatchPolicy
from .robotics import DriveSim, RoboticsSubsystem, ShuttleSim

if TYPE_CHECKING:  # pragma: no cover
    from .faults import FaultSubsystem
    from .lifecycle import RequestLifecycle


class SilicaDispatch:
    """Partitioned dispatch (§4.1): each shuttle serves its own partitions,
    stealing from overloaded donors when its own heaps run dry."""

    name = "silica"

    def run(self, d: "DispatchSubsystem") -> None:
        """Assign idle shuttles to returns, then partition fetches."""
        d.dispatch_returns()
        robotics = d.robotics
        policy = robotics.policy
        assert isinstance(policy, PartitionedPolicy)
        ctx = d.ctx
        for shuttle_sim in robotics.shuttles:
            if not shuttle_sim.idle:
                continue
            if robotics.maybe_recharge(shuttle_sim):
                continue
            shuttle = shuttle_sim.shuttle
            for pid in d.covered_partitions(shuttle.partition):
                drive = d.partition_drive(pid)
                if drive is None or not drive.customer_slot_free:
                    continue
                platter = d.pop_candidate(d.partition_heaps[pid])
                stolen = False
                if platter is None and policy.work_stealing:
                    for donor in policy.steal_candidates(d.partition_load):
                        if donor == pid:
                            continue
                        platter = d.pop_candidate(d.partition_heaps[donor])
                        if platter is not None:
                            stolen = True
                            break
                if platter is None:
                    continue
                if stolen:
                    policy.steals += 1
                    ctx.counters.steals.inc()
                    if ctx.tracer is not None:
                        ctx.tracer.emit(
                            ctx.sim.now,
                            "sched.steal",
                            component=f"shuttle:{shuttle.shuttle_id}",
                            platter=platter,
                            partition=pid,
                        )
                robotics.start_fetch(shuttle_sim, platter, drive)
                break  # this shuttle is busy now


class ShortestPathsDispatch:
    """The SP baseline: any idle shuttle fetches the globally most urgent
    platter via shortest paths — no partitioning, congestion included."""

    name = "sp"

    def run(self, d: "DispatchSubsystem") -> None:
        """Assign idle shuttles to returns, then nearest-shuttle fetches."""
        d.dispatch_returns()
        robotics = d.robotics
        for shuttle_sim in robotics.shuttles:
            if shuttle_sim.idle:
                robotics.maybe_recharge(shuttle_sim)
        while True:
            idle = [s for s in robotics.shuttles if s.idle]
            if not idle:
                return
            if not any(dr.customer_slot_free for dr in robotics.drives):
                return
            platter = d.pop_candidate(d.global_heap)
            if platter is None:
                return
            slot = robotics.layout.locate(platter)
            slot_pos = robotics.layout.slot_position(slot)
            shuttle_sim = min(
                idle,
                key=lambda s: abs(s.shuttle.position.x - slot_pos.x)
                + 0.5 * abs(s.shuttle.position.level - slot_pos.level),
            )
            drive = d.drive_for(shuttle_sim.shuttle, slot)
            if drive is None:
                # No free drive after all; put the candidate back.
                d.push_candidate(
                    platter, d.ctx.scheduler.priority_for(platter) or 0.0
                )
                return
            robotics.start_fetch(shuttle_sim, platter, drive)


class NoShuttleDispatch:
    """The NS baseline: platters teleport into free drives — the lower
    bound on shuttle overhead."""

    name = "ns"

    def run(self, d: "DispatchSubsystem") -> None:
        """Mount the most urgent pending platters into free drives."""
        robotics = d.robotics
        while True:
            free_drives = [dr for dr in robotics.drives if dr.customer_slot_free]
            if not free_drives:
                return
            platter = d.pop_candidate(d.global_heap)
            if platter is None:
                return
            drive = free_drives[0]
            d.ctx.scheduler.begin_service(platter)
            robotics.on_customer_arrival(drive, platter)


_DISPATCH_POLICIES = {
    "silica": SilicaDispatch,
    "sp": ShortestPathsDispatch,
    "ns": NoShuttleDispatch,
}


def dispatch_policy_for(name: str) -> DispatchPolicy:
    """The dispatch strategy registered under ``name`` (silica/sp/ns)."""
    return _DISPATCH_POLICIES[name]()


class DispatchSubsystem:
    """Controller dispatch: candidate indexes, routing tables, the loop."""

    def __init__(
        self,
        ctx: SimContext,
        robotics: RoboticsSubsystem,
        lifecycle: "RequestLifecycle",
    ):
        self.ctx = ctx
        self.robotics = robotics
        self.lifecycle = lifecycle
        # Fetch-candidate indexes: per-partition heaps (Silica) and a global
        # heap (SP/NS), holding (fetch priority, platter) with lazy
        # invalidation. Priority is the scheduler policy's key — earliest
        # queued arrival by default, weighted-deadline urgency under QoS.
        self.platter_partition: Dict[str, int] = {}
        self.partition_heaps: Dict[int, List[Tuple[float, str]]] = {}
        self.partition_load: Dict[int, float] = {}
        policy = robotics.policy
        if isinstance(policy, PartitionedPolicy):
            for platter, slot in robotics.home_slot.items():
                self.platter_partition[platter] = policy.partition_of_slot(slot)
            for p in policy.partitions:
                self.partition_heaps[p.index] = []
                self.partition_load[p.index] = 0.0
        self.global_heap: List[Tuple[float, str]] = []
        # Failure-routing tables: which shuttle covers each partition
        # (self-coverage initially) and per-partition drive re-routing.
        self.partition_cover: Dict[int, int] = {}
        if isinstance(policy, PartitionedPolicy):
            for p in policy.partitions:
                self.partition_cover[p.index] = p.index
        self.drive_override: Dict[int, int] = {}
        self._dispatch_scheduled = False
        self.policy: DispatchPolicy = dispatch_policy_for(ctx.config.policy)
        # Bound by :meth:`wire` during composition.
        self.faults: "FaultSubsystem" = None  # type: ignore[assignment]

    def wire(self, faults: "FaultSubsystem") -> None:
        """Bind the fault subsystem (pending faults fire at dispatch)."""
        self.faults = faults

    # ------------------------------------------------------------------ #
    # The dispatch loop
    # ------------------------------------------------------------------ #

    def request_dispatch(self) -> None:
        """Coalesce dispatch work onto a single zero-delay event."""
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True

        def run() -> None:
            self._dispatch_scheduled = False
            self._dispatch()

        self.ctx.sim.schedule(0.0, run, label="dispatch")

    def _dispatch(self) -> None:
        # Faults that found their component busy fire here, at the next
        # operation boundary, *before* new work is assigned — the
        # event-driven replacement for the old fixed-interval retry poll.
        self.faults.fire_pending_faults()
        self.policy.run(self)

    # ------------------------------------------------------------------ #
    # Returns
    # ------------------------------------------------------------------ #

    def dispatch_returns(self) -> None:
        """Assign idle shuttles to drives with a platter awaiting return."""
        for drive in self.robotics.drives:
            if drive.awaiting_return is None or drive.return_assigned:
                continue
            shuttle = self.shuttle_for_return(drive)
            if shuttle is None:
                continue
            drive.return_assigned = True
            self.robotics.start_return(shuttle, drive)

    def shuttle_for_return(self, drive: DriveSim) -> Optional[ShuttleSim]:
        """The shuttle responsible for returning the drive's platter."""
        platter = drive.awaiting_return
        robotics = self.robotics
        if isinstance(robotics.policy, PartitionedPolicy):
            partition = self.platter_partition[platter]
            cover = self.partition_cover.get(partition, partition)
            for s in robotics.shuttles:
                if s.idle and s.shuttle.partition == cover:
                    return s
            return None
        idle = [s for s in robotics.shuttles if s.idle]
        if not idle:
            return None
        return min(idle, key=lambda s: abs(s.shuttle.position.x - drive.position.x))

    # ------------------------------------------------------------------ #
    # Candidate indexes
    # ------------------------------------------------------------------ #

    def push_candidate(self, platter: str, priority: float) -> None:
        """Publish a platter's fetch candidacy at the given priority."""
        entry = (priority, platter)
        heapq.heappush(self.global_heap, entry)
        pid = self.platter_partition.get(platter)
        if pid is not None:
            heapq.heappush(self.partition_heaps[pid], entry)

    def pop_candidate(self, heap: List[Tuple[float, str]]) -> Optional[str]:
        """Earliest valid pending platter from a heap (lazy invalidation).

        Entries for platters that were serviced, are currently in service,
        or are unreachable are discarded; in-service platters with new
        pending work are re-pushed when their service ends.
        """
        scheduler = self.ctx.scheduler
        while heap:
            _arrival, platter = heap[0]
            if (
                not scheduler.has_work(platter)
                or scheduler.in_service(platter)
                or platter in self.lifecycle.unavailable
                or self.robotics.layout.locate(platter) is None
            ):
                heapq.heappop(heap)
                continue
            heapq.heappop(heap)
            return platter
        return None

    def end_service(self, platter: str) -> None:
        """Platter is back on its shelf: re-arm fetch candidacy."""
        scheduler = self.ctx.scheduler
        scheduler.end_service(platter)
        priority = scheduler.priority_for(platter)
        if priority is not None:
            self.push_candidate(platter, priority)

    # ------------------------------------------------------------------ #
    # Partition load (work stealing)
    # ------------------------------------------------------------------ #

    def note_enqueued(self, platter: str, size_bytes: float) -> None:
        """Account newly queued bytes to the platter's partition load."""
        pid = self.platter_partition.get(platter)
        if pid is not None:
            self.partition_load[pid] += size_bytes

    def reduce_partition_load(self, platter: str, size_bytes: float) -> None:
        """Remove served or withdrawn bytes from the partition load."""
        pid = self.platter_partition.get(platter)
        if pid is not None:
            self.partition_load[pid] = max(
                0.0, self.partition_load[pid] - size_bytes
            )

    # ------------------------------------------------------------------ #
    # Routing (failure-aware)
    # ------------------------------------------------------------------ #

    def covered_partitions(self, own_partition: int) -> List[int]:
        """Partitions this shuttle serves: its own plus any adopted from
        failed shuttles (controller reassignment)."""
        return [
            pid
            for pid, cover in self.partition_cover.items()
            if cover == own_partition
        ]

    def partition_drive(self, pid: int) -> Optional[DriveSim]:
        """The partition's drive, honouring failure re-routing."""
        robotics = self.robotics
        assert isinstance(robotics.policy, PartitionedPolicy)
        drive_id = self.drive_override.get(
            pid, robotics.policy.partitions[pid].drive_id
        )
        if drive_id >= len(robotics.drives):
            return None
        drive = robotics.drives[drive_id]
        return None if drive.failed else drive

    def drive_for(self, shuttle: Shuttle, slot: SlotId) -> Optional[DriveSim]:
        """A free drive for an SP fetch, chosen by the traffic policy."""
        robotics = self.robotics

        def free(drive_id: int) -> bool:
            return (
                drive_id < len(robotics.drives)
                and robotics.drives[drive_id].customer_slot_free
            )

        drive_id = robotics.policy.drive_for(shuttle, slot, free)
        if drive_id is None:
            return None
        return robotics.drives[drive_id]
