"""The composable library-simulation kernel (``repro.core.sim``).

The monolithic ``LibrarySimulation`` god class is decomposed into five
subsystems composed over one :class:`~repro.core.sim.context.SimContext`:

- :mod:`~repro.core.sim.robotics` — drives, shuttles, moves, mounts,
  recharge (the mechanical plant);
- :mod:`~repro.core.sim.dispatch` — the controller's dispatch loop and the
  three policy strategies (silica / sp / ns) behind
  :class:`~repro.core.sim.hooks.DispatchPolicy`;
- :mod:`~repro.core.sim.lifecycle` — request intake, queueing, recovery
  fan-out, completion;
- :mod:`~repro.core.sim.faults` — failure injection, repair clocks,
  return-to-service;
- :mod:`~repro.core.sim.verification` — the fluid read-back queue.

:class:`~repro.core.sim.kernel.SimKernel` wires them together;
:class:`~repro.core.sim.facade.LibrarySimulation` is the thin
backwards-compatible facade every existing call site keeps using. The
kernel is the bottom of the simulator stack: it never imports
``repro.tenancy`` / ``repro.faults`` / ``repro.observability`` /
``repro.service`` — those layers plug in through the protocols in
:mod:`~repro.core.sim.hooks` (enforced by ``tools/check_layers.py``).
"""

from .config import SimConfig
from .context import SimContext, SimCounters
from .dispatch import (
    DispatchSubsystem,
    NoShuttleDispatch,
    ShortestPathsDispatch,
    SilicaDispatch,
    dispatch_policy_for,
)
from .facade import LibrarySimulation
from .faults import FaultSubsystem
from .hooks import (
    AdmissionLike,
    DispatchPolicy,
    FaultEventLike,
    FaultScheduleLike,
    FetchPolicyLike,
    TenancyLike,
    TracerLike,
)
from .kernel import SUBSYSTEM_LABELS, SimKernel
from .lifecycle import RequestLifecycle
from .machines import DriveSim, ShuttleSim
from .robotics import RoboticsSubsystem
from .verification import VerificationSubsystem

__all__ = [
    "AdmissionLike",
    "DispatchPolicy",
    "DispatchSubsystem",
    "DriveSim",
    "FaultEventLike",
    "FaultScheduleLike",
    "FaultSubsystem",
    "FetchPolicyLike",
    "LibrarySimulation",
    "NoShuttleDispatch",
    "RequestLifecycle",
    "RoboticsSubsystem",
    "ShortestPathsDispatch",
    "ShuttleSim",
    "SilicaDispatch",
    "SimConfig",
    "SimContext",
    "SimCounters",
    "SimKernel",
    "SUBSYSTEM_LABELS",
    "TenancyLike",
    "TracerLike",
    "VerificationSubsystem",
    "dispatch_policy_for",
]
