"""Per-machine simulation state wrappers: one drive, one shuttle.

These are the leaf state machines the robotics subsystem composes: a
:class:`DriveSim` pairs a :class:`~repro.media.read_drive.ReadDriveModel`
with its scheduling/occupancy flags, and a :class:`ShuttleSim` pairs a
:class:`~repro.library.shuttle.Shuttle` with its busy flag. All mutation
happens in :mod:`repro.core.sim.robotics`; keeping the state containers
here keeps that module focused on behaviour.
"""

from __future__ import annotations

from typing import Optional

from ...library.layout import Position
from ...library.shuttle import Shuttle
from ...media.read_drive import ReadDriveModel


class DriveSim:
    """State machine of one read drive inside the simulation."""

    def __init__(self, drive_id: int, model: ReadDriveModel, position: Position):
        self.drive_id = drive_id
        self.model = model
        self.position = position
        self.slot_reserved = False  # customer slot claimed by a fetch in flight
        self.customer_platter: Optional[str] = None
        self.serving = False
        self.awaiting_return: Optional[str] = None
        self.return_assigned = False
        self.read_seconds = 0.0
        self.switch_seconds = 0.0
        self.seek_seconds = 0.0
        self.head_track = 0
        self.failed = False
        self.current_mount: Optional[int] = None  # mount-cycle id for tracing

    @property
    def customer_slot_free(self) -> bool:
        """Whether a fetch may target this drive's customer slot."""
        return (
            not self.slot_reserved
            and self.customer_platter is None
            and self.awaiting_return is None
            and not self.failed
        )

    @property
    def occupied(self) -> bool:
        """A fault must wait for an operation boundary on this drive."""
        return bool(self.serving or self.awaiting_return or self.slot_reserved)

    @property
    def sampled_busy(self) -> bool:
        """The monitor's "busy drive" gauge: actively streaming a read.

        Deliberately narrower than :attr:`occupied` — a drive waiting on
        a platter return holds resources but does no customer work, and
        the timeseries is meant to show delivered service.
        """
        return bool(self.serving)


class ShuttleSim:
    """Wrapper pairing a Shuttle with its simulation busy flag."""

    def __init__(self, shuttle: Shuttle):
        self.shuttle = shuttle
        self.busy = False
        #: Incremental-dispatch memo: True while the last idle recharge
        #: check said "no recharge needed" and the battery has not changed
        #: since (an idle shuttle drains nothing). Cleared at every
        #: busy -> idle transition and on repair.
        self.no_recharge_memo = False

    @property
    def idle(self) -> bool:
        """Available for assignment: not busy and not failed."""
        return not self.busy and not self.shuttle.failed

    @property
    def sampled_busy(self) -> bool:
        """The monitor's "busy shuttle" gauge: mid-errand (failed or not)."""
        return bool(self.busy)
