"""The engine-facing simulation context shared by every kernel subsystem.

:class:`SimContext` is deliberately small: the discrete-event engine
(clock), the run's RNG stream, the request scheduler handle, and the
tracer/metrics hooks. Subsystems receive the context at construction and
everything else (sibling subsystems) through explicit ``wire`` calls, so
each can also be built standalone against a stub context in unit tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..events import Simulation
from ..metrics import Counter, Histogram, MetricsRegistry
from ..scheduler import RequestScheduler
from .config import SimConfig
from .hooks import Thunk, TracerLike


class SimCounters:
    """All run counters/histograms, registered on one metrics registry.

    Registration lives here (in one place, in one order) so the exported
    metric names stay byte-identical with the pre-split simulator. QoS
    counters exist only on tenancy-enabled runs so single-tenant metric
    exports stay byte-identical with earlier versions.
    """

    def __init__(self, metrics: MetricsRegistry, tenancy_enabled: bool):
        m = metrics
        self.bytes_read = m.counter(
            "bytes_read_total", "Raw bytes scanned off glass by read drives", "bytes"
        )
        self.recharges = m.counter(
            "recharges_total", "Shuttle battery recharge cycles started"
        )
        self.faults_injected = m.counter(
            "faults_injected_total", "Component faults that actually fired"
        )
        self.faults_repaired = m.counter(
            "faults_repaired_total", "Faults whose repair clock returned the component"
        )
        self.downtime = m.counter(
            "downtime_component_seconds_total",
            "Component-seconds of downtime from closed (repaired) faults",
            "seconds",
        )
        self.metadata_retries = m.counter(
            "metadata_retries_total", "Arrivals bounced off a metadata outage"
        )
        self.metadata_backoff = m.counter(
            "metadata_backoff_seconds_total",
            "Simulated seconds parked requests waited out in retry backoff",
            "seconds",
        )
        self.reread = m.counter(
            "reread_retries_total", "Retry-ladder rung 1: in-place track re-reads"
        )
        self.deep_decode = m.counter(
            "deep_decodes_total", "Retry-ladder rung 2: deeper LDPC iteration budgets"
        )
        self.escalations = m.counter(
            "recovery_escalations_total",
            "Retry-ladder rung 3: escalations to cross-platter NC recovery",
        )
        self.recovery_bytes = m.counter(
            "recovery_bytes_read_total",
            "Raw bytes read by cross-platter NC recovery sub-reads",
            "bytes",
        )
        self.fanout_user_bytes = m.counter(
            "recovery_user_bytes_total",
            "User bytes recovered via cross-platter fan-out",
            "bytes",
        )
        self.requests_lost = m.counter(
            "requests_lost_total", "Reads abandoned with no surviving recovery peer"
        )
        self.steals = m.counter(
            "work_steals_total", "Cross-partition work-stealing fetches"
        )
        # Dispatch hot-path accounting. Deterministic (pure event-order
        # functions of the seed) so they live in the exported metrics;
        # wall-clock dispatch timing stays in the profiler's hotspot table.
        self.dispatch_passes = m.counter(
            "dispatch_passes_total",
            "Dispatch events that ran the assignment policy",
        )
        self.dispatch_short_circuits = m.counter(
            "dispatch_short_circuits_total",
            "Dispatch passes answered by the no-idle-shuttle fast path",
        )
        self.dispatch_assignments = m.counter(
            "dispatch_assignments_total",
            "Fetch, return and mount assignments made by dispatch passes",
        )
        self.h_travel = m.histogram(
            "shuttle_travel_seconds",
            "Per-trip shuttle travel time (including congestion)",
            "seconds",
            buckets=(0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        )
        self.h_completion = m.histogram(
            "request_completion_seconds",
            "Measured top-level request completion time (arrival to last byte)",
            "seconds",
        )
        self.admission_rejects: Optional[Counter] = None
        self.deadline_misses: Optional[Counter] = None
        if tenancy_enabled:
            self.admission_rejects = m.counter(
                "admission_rejections_total",
                "Reads rejected by tenant ingress quotas",
            )
            self.deadline_misses = m.counter(
                "deadline_misses_total",
                "Measured completions past their SLO-class deadline",
            )


class SimContext:
    """Clock, RNG stream, scheduler handle, and tracer/metrics hooks.

    ``tracer`` is normalized at construction: a disabled tracer collapses
    to ``None`` so every emission site in the subsystems stays a single
    pointer comparison. ``request_dispatch`` is the kernel-wide "new work
    may be assignable" hook; the dispatch subsystem installs itself there
    during composition, and stub contexts can leave the default no-op.
    """

    def __init__(self, config: SimConfig, tracer: Optional[TracerLike] = None):
        self.config = config
        self.sim = Simulation(scheduler=config.event_scheduler)
        self.tracer: Optional[TracerLike] = (
            tracer if (tracer is not None and tracer.enabled) else None
        )
        self.rng = np.random.default_rng(config.seed)
        self.metrics = MetricsRegistry(prefix="sim_")
        self.counters = SimCounters(self.metrics, config.tenancy is not None)
        #: The run's request scheduler; composed by the kernel (it needs
        #: the tenancy seam resolved first), or injected by a stub.
        self.scheduler: RequestScheduler = RequestScheduler(
            amortize_batch=config.amortize_batch
        )
        #: "Work may be assignable" hook — replaced during composition by
        #: :meth:`repro.core.sim.dispatch.DispatchSubsystem.request_dispatch`.
        self.request_dispatch: Thunk = lambda: None

    @property
    def now(self) -> float:
        """The engine clock."""
        return self.sim.now


#: Histogram is re-exported for subsystem type annotations.
__all__ = ["SimContext", "SimCounters", "Histogram"]
