"""Robotics subsystem: drives, shuttles, moves, mounts, recharge.

Owns the physical library — the :class:`~repro.library.layout.
LibraryLayout`, the per-drive and per-shuttle simulation state machines,
the platter population and its fixed home slots — and executes every
mechanical trip (fetch, return, recharge) and drive service (mount, seek,
scan, unmount). Which work gets assigned to which shuttle/drive is the
dispatch subsystem's job; request state transitions (completion, retry
escalation into recovery) are delegated to the request lifecycle.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ...library.layout import LibraryLayout, Position
from ...library.shuttle import Shuttle
from ...media.read_drive import ReadDriveConfig, ReadDriveModel
from ..requests import SimRequest
from ..traffic import PartitionedPolicy, ShortestPathsPolicy, TrafficPolicy
from .context import SimContext
from .machines import DriveSim, ShuttleSim

if TYPE_CHECKING:  # pragma: no cover
    from .dispatch import DispatchSubsystem
    from .lifecycle import RequestLifecycle
    from .verification import VerificationSubsystem

#: Event labels of pure shuttle-kinematics callbacks (travel + battery):
#: the "motion" bucket of the subsystem wall-share table. The ``*-trip``
#: labels are the coarse-motion (``fine_motion_events=False``) closed-form
#: trip completions that replace the per-hop move/pick/move/place chains.
MOTION_EVENT_LABELS = frozenset({"move", "recharge", "fetch-trip", "return-trip"})

#: Event labels of robotics service steps (pick/place handoffs and drive
#: mount/read/unmount phases): the "robotics" bucket of the table.
ROBOTICS_EVENT_LABELS = frozenset(
    {
        "fetch-pick",
        "fetch-place",
        "return-pick",
        "return-place",
        "mount",
        "read",
        "unmount",
    }
)


class RoboticsSubsystem:
    """The library's mechanical plant and its service state machines."""

    def __init__(self, ctx: SimContext):
        self.ctx = ctx
        cfg = ctx.config
        lib_cfg = cfg.library
        if cfg.num_drives != lib_cfg.num_read_drives:
            per_rack = -(-cfg.num_drives // 2)  # ceil split over two racks
            per_rack = min(10, max(2, per_rack))
            lib_cfg = replace(lib_cfg, drives_per_read_rack=per_rack)
        self.layout = LibraryLayout(lib_cfg)
        drive_cfg = ReadDriveConfig(throughput_mbps=cfg.drive_throughput_mbps)
        # The populated bays. A tiny fleet (fewer drives than bays) only
        # instantiates a prefix of the layout's bays; the traffic policy
        # must route against this list, not the full bay roster, or some
        # partitions end up keyed to drives that do not exist.
        live_bays = self.layout.drives[: cfg.num_drives]
        self.drives: List[DriveSim] = []
        for bay in live_bays:
            model = ReadDriveModel(config=drive_cfg, seed=cfg.seed * 1000 + bay.drive_id)
            self.drives.append(DriveSim(bay.drive_id, model, bay.position))
        raw_shuttles = [
            Shuttle(
                i,
                home=Position(0.0, 0),
                battery_capacity_joules=cfg.battery_capacity_joules,
            )
            for i in range(cfg.num_shuttles)
        ]
        if cfg.policy == "silica":
            self.policy: Optional[TrafficPolicy] = PartitionedPolicy(
                self.layout,
                raw_shuttles,
                ctx.rng,
                work_stealing=cfg.work_stealing,
                drive_bays=live_bays,
            )
        elif cfg.policy == "sp":
            self.policy = ShortestPathsPolicy(
                self.layout, raw_shuttles, ctx.rng, drive_bays=live_bays
            )
        else:  # ns
            self.policy = None
        self.shuttles = [ShuttleSim(s) for s in raw_shuttles]
        # Platter population and placement.
        self.platters: List[str] = [f"P{i:05d}" for i in range(cfg.num_platters)]
        self.platter_index = {p: i for i, p in enumerate(self.platters)}
        self.home_slot: Dict[str, "object"] = {}
        self._place_platters()
        self.travel_times: List[float] = []
        self.mount_counter = 0
        #: Coarse motion (``fine_motion_events=False``) collapses each
        #: fetch/return trip into one (fetch) or two (return) scheduled
        #: completions instead of the four-hop move/pick/move/place chain.
        self._fine_motion = cfg.fine_motion_events
        #: When coarse motion evaluates a future hop eagerly, this carries
        #: the hop's true simulated timestamp so the shuttle-model tracer
        #: hooks stamp trace events with the same times fine motion would.
        self._trace_ts: Optional[float] = None
        # Sibling subsystems, bound by :meth:`wire` during composition.
        self.dispatch: "DispatchSubsystem" = None  # type: ignore[assignment]
        self.lifecycle: "RequestLifecycle" = None  # type: ignore[assignment]
        self.verification: "VerificationSubsystem" = None  # type: ignore[assignment]
        if ctx.tracer is not None:
            self._install_shuttle_hooks()

    def wire(
        self,
        dispatch: "DispatchSubsystem",
        lifecycle: "RequestLifecycle",
        verification: "VerificationSubsystem",
    ) -> None:
        """Bind the sibling subsystems this one calls into."""
        self.dispatch = dispatch
        self.lifecycle = lifecycle
        self.verification = verification

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def _place_platters(self) -> None:
        slots = list(self.layout.all_slots())
        if len(slots) < len(self.platters):
            raise ValueError(
                f"{len(self.platters)} platters exceed capacity {len(slots)}"
            )
        order = self.ctx.rng.permutation(len(slots))
        for platter, idx in zip(self.platters, order):
            slot = slots[int(idx)]
            self.layout.store(platter, slot)
            self.home_slot[platter] = slot

    def _install_shuttle_hooks(self) -> None:
        """Route shuttle model events (move/pick/place) into the tracer."""

        def make_hook(shuttle: Shuttle) -> Callable[..., None]:
            component = f"shuttle:{shuttle.shuttle_id}"

            def hook(kind: str, attrs: Dict[str, object]) -> None:
                ts = self._trace_ts
                self.ctx.tracer.emit(
                    ts if ts is not None else self.ctx.sim.now,
                    f"shuttle.{kind}",
                    component=component,
                    **attrs,
                )

            return hook

        for shuttle_sim in self.shuttles:
            shuttle_sim.shuttle.on_event = make_hook(shuttle_sim.shuttle)

    # ------------------------------------------------------------------ #
    # Motion
    # ------------------------------------------------------------------ #

    def seek_seconds(self, drive: DriveSim, target_track: int) -> float:
        """Distance-dependent XY seek, calibrated so uniformly random
        seeks reproduce the Figure 3(d) distribution (median ~0.6 s,
        maximum 2 s)."""
        cfg = self.ctx.config
        distance = abs(drive.head_track - target_track) / max(1, cfg.platter_tracks)
        base = 0.05 + 1.95 * min(1.0, distance)
        jitter = float(self.ctx.rng.uniform(0.92, 1.08))
        return min(2.0, base * jitter)

    def move(self, shuttle: Shuttle, target: Position, then: Callable[[], None]) -> None:
        """Plan and execute one shuttle move, then continue with ``then``."""
        plan = self.policy.plan_move(shuttle, target, self.ctx.sim.now)
        self.travel_times.append(plan.total_seconds)
        self.ctx.counters.h_travel.observe(plan.total_seconds)

        def arrived() -> None:
            shuttle.complete_move(
                target,
                plan.base_seconds,
                congestion_seconds=plan.congestion_seconds,
                stop_start_cycles=plan.stop_start_cycles,
            )
            then()

        self.ctx.sim.schedule(plan.total_seconds, arrived, label="move")

    def _plan_leg(self, shuttle: Shuttle, target: Position, depart: float):
        """Plan one coarse-trip leg at its true departure time.

        Calls the traffic policy exactly as :meth:`move` would at
        ``depart`` — same corridor reservation window, same congestion
        draws — and records the same travel accounting, so closed-form
        trips stay draw-for-draw aligned with fine motion.
        """
        plan = self.policy.plan_move(shuttle, target, depart)
        self.travel_times.append(plan.total_seconds)
        self.ctx.counters.h_travel.observe(plan.total_seconds)
        return plan

    def maybe_recharge(self, shuttle_sim: ShuttleSim) -> bool:
        """Send a low-battery shuttle to charge (controller duty, §4.1).

        The shuttle is unavailable for the recharge duration; its partition
        is uncovered meanwhile, which is why the threshold is conservative.
        Returns True if a recharge was started.
        """
        ctx = self.ctx
        cfg = ctx.config
        if not cfg.battery_management:
            return False
        shuttle = shuttle_sim.shuttle
        if shuttle.battery_fraction >= cfg.battery_low_threshold:
            return False
        shuttle_sim.busy = True
        ctx.counters.recharges.inc()
        if ctx.tracer is not None:
            ctx.tracer.emit(
                ctx.sim.now,
                "shuttle.recharge",
                component=f"shuttle:{shuttle.shuttle_id}",
                battery_fraction=shuttle.battery_fraction,
                seconds=cfg.recharge_seconds,
            )

        def charged() -> None:
            shuttle.recharge()
            shuttle_sim.busy = False
            shuttle_sim.no_recharge_memo = False
            ctx.request_dispatch()

        ctx.sim.schedule(cfg.recharge_seconds, charged, label="recharge")
        return True

    # ------------------------------------------------------------------ #
    # The fetch trip
    # ------------------------------------------------------------------ #

    def start_fetch(self, shuttle_sim: ShuttleSim, platter: str, drive: DriveSim) -> None:
        """Dispatch a shuttle to fetch ``platter`` into ``drive``."""
        ctx = self.ctx
        shuttle = shuttle_sim.shuttle
        shuttle_sim.busy = True
        drive.slot_reserved = True
        self.dispatch.note_drive_slot(drive)
        ctx.scheduler.begin_service(platter)
        slot = self.layout.locate(platter)
        slot_pos = self.layout.slot_position(slot)
        fetch_started = ctx.sim.now
        if ctx.tracer is not None:
            ctx.tracer.emit(
                fetch_started,
                "fetch.assign",
                component=f"shuttle:{shuttle.shuttle_id}",
                platter=platter,
                drive=drive.drive_id,
            )
        if not self._fine_motion:
            self._coarse_fetch(shuttle_sim, platter, drive, slot_pos, fetch_started)
            return

        def at_shelf() -> None:
            pick_dur = shuttle.pick(platter, ctx.rng)

            def picked() -> None:
                self.layout.remove(platter)
                self.move(shuttle, drive.position, at_drive)

            ctx.sim.schedule(pick_dur, picked, label="fetch-pick")

        def at_drive() -> None:
            place_dur = shuttle.place(ctx.rng)

            def placed() -> None:
                shuttle_sim.busy = False
                shuttle_sim.no_recharge_memo = False
                drive.slot_reserved = False
                self.on_customer_arrival(drive, platter, fetch_started=fetch_started)
                ctx.request_dispatch()

            ctx.sim.schedule(place_dur, placed, label="fetch-place")

        self.move(shuttle, slot_pos, at_shelf)

    def _coarse_fetch(
        self,
        shuttle_sim: ShuttleSim,
        platter: str,
        drive: DriveSim,
        slot_pos: Position,
        fetch_started: float,
    ) -> None:
        """Closed-form fetch: evaluate every hop now, schedule one event.

        RNG draws happen in the exact order fine motion makes them (leg-1
        plan, pick, leg-2 plan, place) and each leg is planned at its true
        departure time, so reservation windows and trip durations match
        fine motion draw-for-draw on serialized geometries. Shuttle state
        (position, battery, carrying) mutates eagerly at trip start; the
        observable handoff — the customer arrival at the drive and its
        dispatch wake-up — fires at the same simulated time fine motion
        would fire it.
        """
        ctx = self.ctx
        shuttle = shuttle_sim.shuttle
        plan1 = self._plan_leg(shuttle, slot_pos, fetch_started)
        t_shelf = fetch_started + plan1.total_seconds
        self._trace_ts = t_shelf
        shuttle.complete_move(
            slot_pos,
            plan1.base_seconds,
            congestion_seconds=plan1.congestion_seconds,
            stop_start_cycles=plan1.stop_start_cycles,
        )
        pick_dur = shuttle.pick(platter, ctx.rng)
        t_picked = t_shelf + pick_dur
        self.layout.remove(platter)
        plan2 = self._plan_leg(shuttle, drive.position, t_picked)
        t_drive = t_picked + plan2.total_seconds
        self._trace_ts = t_drive
        shuttle.complete_move(
            drive.position,
            plan2.base_seconds,
            congestion_seconds=plan2.congestion_seconds,
            stop_start_cycles=plan2.stop_start_cycles,
        )
        place_dur = shuttle.place(ctx.rng)
        self._trace_ts = None
        t_done = t_drive + place_dur

        def trip_done() -> None:
            shuttle_sim.busy = False
            shuttle_sim.no_recharge_memo = False
            drive.slot_reserved = False
            self.on_customer_arrival(drive, platter, fetch_started=fetch_started)
            ctx.request_dispatch()

        ctx.sim.schedule(t_done - fetch_started, trip_done, label="fetch-trip")

    def start_return(self, shuttle_sim: ShuttleSim, drive: DriveSim) -> None:
        """Dispatch a shuttle to return the drive's finished platter home."""
        ctx = self.ctx
        shuttle = shuttle_sim.shuttle
        shuttle_sim.busy = True
        platter = drive.awaiting_return
        home = self.home_slot[platter]
        home_pos = self.layout.slot_position(home)
        if ctx.tracer is not None:
            ctx.tracer.emit(
                ctx.sim.now,
                "return.start",
                component=f"shuttle:{shuttle.shuttle_id}",
                platter=platter,
                drive=drive.drive_id,
            )
        if not self._fine_motion:
            self._coarse_return(shuttle_sim, drive, platter, home, home_pos)
            return

        def at_drive() -> None:
            pick_dur = shuttle.pick(platter, ctx.rng)

            def picked() -> None:
                # Platter leaves the drive: customer slot frees up.
                drive.awaiting_return = None
                drive.return_assigned = False
                self.dispatch.note_drive_slot(drive)
                ctx.request_dispatch()
                self.move(shuttle, home_pos, at_home)

            ctx.sim.schedule(pick_dur, picked, label="return-pick")

        def at_home() -> None:
            place_dur = shuttle.place(ctx.rng)

            def placed() -> None:
                self.layout.store(platter, home)
                self.dispatch.end_service(platter)
                shuttle_sim.busy = False
                shuttle_sim.no_recharge_memo = False
                if ctx.tracer is not None:
                    ctx.tracer.emit(
                        ctx.sim.now,
                        "return.done",
                        component=f"shuttle:{shuttle.shuttle_id}",
                        platter=platter,
                    )
                ctx.request_dispatch()

            ctx.sim.schedule(place_dur, placed, label="return-place")

        self.move(shuttle, drive.position, at_drive)

    def _coarse_return(
        self,
        shuttle_sim: ShuttleSim,
        drive: DriveSim,
        platter: str,
        home: "object",
        home_pos: Position,
    ) -> None:
        """Closed-form return: one mid-trip handoff plus one completion.

        The pick-complete moment is observable — the drive's customer
        slot frees and dispatch is woken — so it keeps its own scheduled
        event (same ``return-pick`` label and simulated time as fine
        motion); the rest of the trip collapses into the completion.
        """
        ctx = self.ctx
        shuttle = shuttle_sim.shuttle
        start = ctx.sim.now
        plan1 = self._plan_leg(shuttle, drive.position, start)
        t_drive = start + plan1.total_seconds
        self._trace_ts = t_drive
        shuttle.complete_move(
            drive.position,
            plan1.base_seconds,
            congestion_seconds=plan1.congestion_seconds,
            stop_start_cycles=plan1.stop_start_cycles,
        )
        pick_dur = shuttle.pick(platter, ctx.rng)
        t_picked = t_drive + pick_dur
        plan2 = self._plan_leg(shuttle, home_pos, t_picked)
        t_home = t_picked + plan2.total_seconds
        self._trace_ts = t_home
        shuttle.complete_move(
            home_pos,
            plan2.base_seconds,
            congestion_seconds=plan2.congestion_seconds,
            stop_start_cycles=plan2.stop_start_cycles,
        )
        place_dur = shuttle.place(ctx.rng)
        self._trace_ts = None
        t_done = t_home + place_dur

        def picked() -> None:
            # Platter leaves the drive: customer slot frees up.
            drive.awaiting_return = None
            drive.return_assigned = False
            self.dispatch.note_drive_slot(drive)
            ctx.request_dispatch()

        ctx.sim.schedule(t_picked - start, picked, label="return-pick")

        def trip_done() -> None:
            self.layout.store(platter, home)
            self.dispatch.end_service(platter)
            shuttle_sim.busy = False
            shuttle_sim.no_recharge_memo = False
            if ctx.tracer is not None:
                ctx.tracer.emit(
                    ctx.sim.now,
                    "return.done",
                    component=f"shuttle:{shuttle.shuttle_id}",
                    platter=platter,
                )
            ctx.request_dispatch()

        ctx.sim.schedule(t_done - start, trip_done, label="return-trip")

    # ------------------------------------------------------------------ #
    # Drive service
    # ------------------------------------------------------------------ #

    def on_customer_arrival(
        self, drive: DriveSim, platter: str, fetch_started: Optional[float] = None
    ) -> None:
        """A customer platter reached the drive: switch, mount, serve."""
        ctx = self.ctx
        self.verification.drive_stops_verifying()
        drive.customer_platter = platter
        drive.serving = True
        self.dispatch.note_drive_slot(drive)
        drive.head_track = int(ctx.rng.integers(0, max(1, ctx.config.platter_tracks)))
        switch = (
            drive.model.config.fast_switch_seconds
            if ctx.config.fast_switching
            else drive.model.config.unmount_seconds + drive.model.config.mount_seconds
        )
        drive.switch_seconds += switch
        mount = drive.model.config.mount_seconds
        drive.read_seconds += mount
        self.mount_counter += 1
        drive.current_mount = self.mount_counter
        if ctx.tracer is not None:
            now = ctx.sim.now
            ctx.tracer.emit(
                now,
                "drive.mount",
                component=f"drive:{drive.drive_id}",
                mount_id=drive.current_mount,
                platter=platter,
                mount_s=mount,
                switch_s=switch,
                shuttle_s=(now - fetch_started) if fetch_started is not None else 0.0,
            )

        def mounted() -> None:
            self.serve_batch(drive, platter)

        ctx.sim.schedule(switch + mount, mounted, label="mount")

    def serve_batch(self, drive: DriveSim, platter: str) -> None:
        """Take and serve every queued request for the mounted platter."""
        ctx = self.ctx
        batch = ctx.scheduler.take_batch(platter)
        if not batch:
            self.finish_service(drive, platter)
            return
        self.dispatch.reduce_partition_load(
            platter, sum(r.size_bytes for r in batch)
        )
        if ctx.config.sort_batch_by_track:
            batch = sorted(batch, key=lambda r: r.track_start)
        if ctx.tracer is not None:
            ctx.tracer.emit(
                ctx.sim.now,
                "sched.batch",
                component=f"drive:{drive.drive_id}",
                platter=platter,
                size=len(batch),
                bytes=sum(r.size_bytes for r in batch),
            )
        self._serve_requests(drive, platter, batch, 0)

    def _serve_requests(
        self, drive: DriveSim, platter: str, batch: List[SimRequest], index: int
    ) -> None:
        if index >= len(batch):
            if not self.ctx.config.amortize_batch:
                # Ablation mode: one request per mount — unmount and return
                # the platter even if more requests are queued for it.
                self.finish_service(drive, platter)
                return
            # Re-check for arrivals that queued during this batch.
            self.serve_batch(drive, platter)
            return
        request = batch[index]
        ctx = self.ctx
        cfg = ctx.config
        counters = ctx.counters
        tr = ctx.tracer
        seek = self.seek_seconds(drive, request.track_start)
        drive.head_track = request.track_start + request.num_tracks
        track_bytes = request.num_tracks * cfg.track_read_bytes
        scan = drive.model.seconds_to_scan(track_bytes)
        duration = seek + scan
        bytes_this_service = track_bytes
        seek_total = seek
        decode_extra = 0.0
        drive.seek_seconds += seek
        escalate = False
        p = cfg.transient_read_error_prob
        if p > 0.0 and float(ctx.rng.random()) < p:
            # Read-retry escalation ladder. Rung 1: a transient sector
            # error — re-read the tracks in place (another seek + scan).
            counters.reread.inc()
            request.retries += 1
            request.mark_degraded()
            reread_seek = self.seek_seconds(drive, request.track_start)
            duration += reread_seek + scan
            drive.seek_seconds += reread_seek
            seek_total += reread_seek
            bytes_this_service += track_bytes
            if tr is not None:
                tr.emit(
                    ctx.sim.now,
                    "retry.reread",
                    request_id=request.request_id,
                    component=f"drive:{drive.drive_id}",
                    extra_s=reread_seek + scan,
                )
            if float(ctx.rng.random()) < p:
                # Rung 2: spend a deeper LDPC iteration budget on the
                # captured image (decode compute, no extra media read).
                counters.deep_decode.inc()
                request.retries += 1
                decode_extra = scan * cfg.deep_decode_factor
                duration += decode_extra
                if tr is not None:
                    tr.emit(
                        ctx.sim.now,
                        "retry.deep_decode",
                        request_id=request.request_id,
                        component=f"drive:{drive.drive_id}",
                        extra_s=decode_extra,
                    )
                if (
                    not request.is_recovery
                    and float(ctx.rng.random()) < p * cfg.deep_decode_residual
                ):
                    # Rung 3: the tracks are unrecoverable in place —
                    # escalate to cross-platter NC recovery. Recovery
                    # reads themselves never re-escalate (they already
                    # carry the set's redundancy).
                    escalate = True
        drive.read_seconds += duration
        counters.bytes_read.inc(bytes_this_service)
        if request.is_recovery:
            counters.recovery_bytes.inc(bytes_this_service)
        if tr is not None:
            tr.emit(
                ctx.sim.now,
                "drive.read",
                request_id=request.request_id,
                component=f"drive:{drive.drive_id}",
                mount_id=drive.current_mount,
                seek_s=seek_total,
                channel_s=duration - seek_total - decode_extra,
                decode_s=decode_extra,
                bytes=bytes_this_service,
                retries=request.retries,
                escalated=escalate,
            )

        def done() -> None:
            if escalate:
                if tr is not None:
                    tr.emit(
                        ctx.sim.now,
                        "retry.escalate",
                        request_id=request.request_id,
                        component=f"drive:{drive.drive_id}",
                        platter=platter,
                    )
                if self.lifecycle.fan_out_recovery(request):
                    counters.escalations.inc()
                else:
                    self.lifecycle.abandon_request(request)
            else:
                self.lifecycle.complete_request(request)
            self._serve_requests(drive, platter, batch, index + 1)

        ctx.sim.schedule(duration, done, label="read")

    def finish_service(self, drive: DriveSim, platter: str) -> None:
        """Unmount the customer platter and hand it to the return path."""
        ctx = self.ctx
        unmount = drive.model.config.unmount_seconds
        switch = (
            drive.model.config.fast_switch_seconds
            if ctx.config.fast_switching
            else drive.model.config.unmount_seconds + drive.model.config.mount_seconds
        )
        drive.read_seconds += unmount
        drive.switch_seconds += switch
        if ctx.tracer is not None:
            ctx.tracer.emit(
                ctx.sim.now,
                "drive.unmount",
                component=f"drive:{drive.drive_id}",
                mount_id=drive.current_mount,
                platter=platter,
                unmount_s=unmount,
                switch_s=switch,
            )
        drive.current_mount = None

        def done() -> None:
            self.verification.drive_resumes_verifying()
            drive.customer_platter = None
            drive.serving = False
            if ctx.config.policy == "ns":
                # Platters teleport back: slot frees instantly.
                self.dispatch.end_service(platter)
            else:
                drive.awaiting_return = platter
                self.dispatch.note_return_pending(drive)
            self.dispatch.note_drive_slot(drive)
            ctx.request_dispatch()

        ctx.sim.schedule(unmount + switch, done, label="unmount")
