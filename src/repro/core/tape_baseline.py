"""A tape-library baseline simulator (the incumbent of Sections 1-2).

The paper motivates Silica against the system tape was designed to be:
"a modern tape is over 1 km long, spooling takes over a minute, and read
drives provide high throughput (~360 MB/s). Tape library robots are prone
to failures leading to media unavailability and are designed to perform
tape load/unload operations assuming minutes of IO per tape."

:class:`TapeLibrarySimulation` runs the same read traces through a
gantry-robot tape library: a small number of high-throughput drives, a
couple of serializing robot accessors, long load/thread/spool cycles, and
rewind-before-unload. The same per-tape request amortization is applied
(both systems batch), so the comparison isolates the *mechanics*: tape's
per-mount minutes against Silica's per-mount seconds. On the paper's
IOPS-dominated cloud archival workload, that difference is the whole story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..workload.traces import ReadRequest, ReadTrace
from .events import Simulation
from .metrics import CompletionStats
from .requests import SimRequest
from .scheduler import RequestScheduler


@dataclass(frozen=True)
class TapeConfig:
    """Tape library parameters (LTO-class, Section 1's description)."""

    num_drives: int = 8
    num_robots: int = 2
    drive_throughput_mbps: float = 360.0
    robot_exchange_seconds: float = 15.0  # gantry travel + grip, each way
    load_thread_seconds: float = 20.0  # insert + thread the leader pin
    spool_seek_mean_seconds: float = 45.0  # locate a file on >1 km of tape
    spool_seek_max_seconds: float = 120.0
    rewind_factor: float = 0.8  # rewind before unload, relative to seek
    unload_seconds: float = 20.0
    num_tapes: int = 3000
    tape_capacity_bytes: float = 12e12  # LTO-8 native
    seed: int = 0


@dataclass
class TapeReport:
    """Results of one tape-library run."""

    completions: CompletionStats
    requests_submitted: int = 0
    requests_completed: int = 0
    drive_busy_seconds: float = 0.0
    robot_busy_seconds: float = 0.0
    mounts: int = 0
    simulated_seconds: float = 0.0

    def summary(self) -> str:
        c = self.completions
        return (
            f"requests={self.requests_completed}/{self.requests_submitted} "
            f"tail={c.tail_hours:.2f}h median={c.median / 60:.1f}min "
            f"mounts={self.mounts}"
        )


class _TapeDrive:
    """One tape drive: busy flag plus the currently mounted cartridge."""

    def __init__(self, drive_id: int):
        self.drive_id = drive_id
        self.busy = False
        self.mounted_tape: Optional[str] = None


class TapeLibrarySimulation:
    """One tape library, one read trace, one report.

    The request scheduler is identical to Silica's (arrival-ordered,
    per-tape grouping, full batch amortization per mount); only the
    mechanics differ. A mount cycle is:

        robot exchange -> load + thread -> [per request: spool seek + read]
        -> rewind -> unload -> robot exchange back
    """

    def __init__(self, config: Optional[TapeConfig] = None):
        self.config = config or TapeConfig()
        cfg = self.config
        self.sim = Simulation()
        self.rng = np.random.default_rng(cfg.seed)
        self.scheduler = RequestScheduler(amortize_batch=True)
        self.tapes = [f"T{i:05d}" for i in range(cfg.num_tapes)]
        self.drives = [_TapeDrive(i) for i in range(cfg.num_drives)]
        self._free_robots = cfg.num_robots
        self._robot_waiters: List[Callable[[], None]] = []
        self.all_requests: List[SimRequest] = []
        self._next_id = 0
        self._candidates: List[Tuple[float, str]] = []
        self._dispatch_scheduled = False
        self.drive_busy_seconds = 0.0
        self.robot_busy_seconds = 0.0
        self.mounts = 0

    # ------------------------------------------------------------------ #
    # Intake
    # ------------------------------------------------------------------ #

    def assign_trace(self, trace: ReadTrace, measure_start: float, measure_end: float) -> None:
        """Uniformly map requests onto tapes and schedule arrivals."""
        import heapq

        for request in trace:
            tape = self.tapes[int(self.rng.integers(0, len(self.tapes)))]
            self._next_id += 1
            sim_request = SimRequest(
                request_id=self._next_id,
                arrival=request.time,
                platter_id=tape,
                size_bytes=request.size_bytes,
                measured=measure_start <= request.time < measure_end,
            )
            self.all_requests.append(sim_request)

            def arrive(r=sim_request) -> None:
                if self.scheduler.enqueue(r):
                    heapq.heappush(self._candidates, (r.arrival, r.platter_id))
                self._request_dispatch()

            self.sim.schedule_at(request.time, arrive, label="arrival")

    # ------------------------------------------------------------------ #
    # Robots (serializing accessors)
    # ------------------------------------------------------------------ #

    def _acquire_robot(self, callback: Callable[[], None]) -> None:
        if self._free_robots > 0:
            self._free_robots -= 1
            self.sim.schedule(0.0, callback, label="robot-grant")
        else:
            self._robot_waiters.append(callback)

    def _release_robot(self) -> None:
        if self._robot_waiters:
            callback = self._robot_waiters.pop(0)
            self.sim.schedule(0.0, callback, label="robot-grant")
        else:
            self._free_robots += 1

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _request_dispatch(self) -> None:
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True

        def run() -> None:
            self._dispatch_scheduled = False
            self._dispatch()

        self.sim.schedule(0.0, run, label="dispatch")

    def _pop_candidate(self) -> Optional[str]:
        import heapq

        while self._candidates:
            _arrival, tape = self._candidates[0]
            if not self.scheduler.has_work(tape) or self.scheduler.in_service(tape):
                heapq.heappop(self._candidates)
                continue
            heapq.heappop(self._candidates)
            return tape
        return None

    def _dispatch(self) -> None:
        for drive in self.drives:
            if drive.busy:
                continue
            tape = self._pop_candidate()
            if tape is None:
                return
            self._start_mount(drive, tape)

    def _start_mount(self, drive: _TapeDrive, tape: str) -> None:
        cfg = self.config
        drive.busy = True
        self.scheduler.begin_service(tape)
        self.mounts += 1

        def robot_has_tape() -> None:
            exchange = cfg.robot_exchange_seconds
            self.robot_busy_seconds += exchange

            def delivered() -> None:
                self._release_robot()
                load = cfg.load_thread_seconds
                self.drive_busy_seconds += load
                self.sim.schedule(load, lambda: self._serve(drive, tape), label="load")

            self.sim.schedule(exchange, delivered, label="robot-carry")

        self._acquire_robot(robot_has_tape)

    def _sample_seek(self) -> float:
        cfg = self.config
        mu = math.log(cfg.spool_seek_mean_seconds) - 0.125
        value = float(self.rng.lognormal(mu, 0.5))
        return min(value, cfg.spool_seek_max_seconds)

    def _serve(self, drive: _TapeDrive, tape: str) -> None:
        drive.mounted_tape = tape
        batch = self.scheduler.take_batch(tape)
        if not batch:
            self._finish(drive, tape)
            return
        self._serve_requests(drive, tape, batch, 0)

    def _serve_requests(self, drive: _TapeDrive, tape: str, batch: List[SimRequest], index: int) -> None:
        if index >= len(batch):
            self._serve(drive, tape)  # late arrivals for the mounted tape
            return
        cfg = self.config
        request = batch[index]
        seek = self._sample_seek()
        read = request.size_bytes / (cfg.drive_throughput_mbps * 1e6)
        duration = seek + read
        self.drive_busy_seconds += duration

        def done() -> None:
            request.complete(self.sim.now)
            self._serve_requests(drive, tape, batch, index + 1)

        self.sim.schedule(duration, done, label="tape-read")

    def _finish(self, drive: _TapeDrive, tape: str) -> None:
        cfg = self.config
        rewind = self._sample_seek() * cfg.rewind_factor
        unload = cfg.unload_seconds
        self.drive_busy_seconds += rewind + unload

        def unloaded() -> None:
            def robot_returns() -> None:
                exchange = cfg.robot_exchange_seconds
                self.robot_busy_seconds += exchange

                def shelved() -> None:
                    self._release_robot()
                    drive.busy = False
                    drive.mounted_tape = None
                    self.scheduler.end_service(tape)
                    if self.scheduler.has_work(tape):
                        import heapq

                        heapq.heappush(
                            self._candidates,
                            (self.scheduler.earliest_for(tape), tape),
                        )
                    self._request_dispatch()

                self.sim.schedule(exchange, shelved, label="robot-return")

            self._acquire_robot(robot_returns)

        self.sim.schedule(rewind + unload, unloaded, label="rewind-unload")

    # ------------------------------------------------------------------ #
    # Run + report
    # ------------------------------------------------------------------ #

    def run(self) -> TapeReport:
        self.sim.run()
        measured = [
            r.completion_time
            for r in self.all_requests
            if r.measured and r.done
        ]
        return TapeReport(
            completions=CompletionStats.from_times(measured),
            requests_submitted=len(self.all_requests),
            requests_completed=sum(1 for r in self.all_requests if r.done),
            drive_busy_seconds=self.drive_busy_seconds,
            robot_busy_seconds=self.robot_busy_seconds,
            mounts=self.mounts,
            simulated_seconds=self.sim.now,
        )
