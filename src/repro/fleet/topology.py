"""Fleet layout: member libraries inside named failure domains.

The paper's durability argument (Section 8) only completes at the region
level — a library is itself a failure domain, and archival availability
comes from replicas held in *other* domains. :class:`FleetTopology`
makes those domains explicit: every member library sits inside three
nested domains (its own ``lib:i`` domain, a shared rack-row ``power:j``
domain, and a ``region:r`` domain), and the replica map is the
deterministic k-of-n placement primitive
:func:`repro.core.replication.place_across_domains` applied at a chosen
isolation level, so no two replicas of an object ever share a domain
that can fail as a unit.

The topology is pure data (frozen dataclasses): the coordinator, the
fault scheduler, and any offline analysis can all recompute the same
placement with no shared directory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.replication import place_across_domains

#: Isolation levels an object's replicas must be spread across.
ISOLATION_LEVELS = ("library", "power")


@dataclass(frozen=True)
class LibrarySite:
    """One member library and the failure domains that contain it."""

    index: int
    name: str  # the library's own failure domain, e.g. "lib:0"
    power_domain: str  # shared rack-row power, e.g. "power:0"
    region: str  # e.g. "region:0"

    @property
    def domains(self) -> Tuple[str, str, str]:
        """Every domain whose outage takes this member down."""
        return (self.name, self.power_domain, self.region)


@dataclass(frozen=True)
class FleetTopology:
    """N member libraries plus a deterministic k-of-n replica map.

    ``isolation`` picks the domain level replicas must not share:
    ``"library"`` tolerates any single-library loss, ``"power"``
    (default) additionally tolerates a whole rack-row power event —
    the correlated failure mode :class:`repro.faults.FleetFaultSchedule`
    injects.
    """

    sites: Tuple[LibrarySite, ...]
    replicas: int = 2
    isolation: str = "power"

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError("a fleet needs at least one library")
        if self.replicas < 1:
            raise ValueError("replicas must be at least 1")
        if self.isolation not in ISOLATION_LEVELS:
            raise ValueError(f"unknown isolation level {self.isolation!r}")
        distinct = len(set(self.placement_domains))
        if self.replicas > distinct:
            raise ValueError(
                f"cannot isolate {self.replicas} replicas across {distinct} "
                f"distinct {self.isolation} domain(s)"
            )

    @classmethod
    def build(
        cls,
        num_libraries: int,
        replicas: int = 2,
        libraries_per_power_domain: int = 2,
        num_regions: int = 1,
        isolation: str = "power",
    ) -> "FleetTopology":
        """A regular layout: libraries packed into rack rows and regions.

        Library ``i`` lands in power domain ``i // libraries_per_power_
        domain`` and regions split the fleet contiguously — the shape of
        a real deployment where adjacent libraries share electrical
        infrastructure.
        """
        if num_libraries < 1:
            raise ValueError("num_libraries must be at least 1")
        if libraries_per_power_domain < 1:
            raise ValueError("libraries_per_power_domain must be at least 1")
        if num_regions < 1:
            raise ValueError("num_regions must be at least 1")
        sites = tuple(
            LibrarySite(
                index=i,
                name=f"lib:{i}",
                power_domain=f"power:{i // libraries_per_power_domain}",
                region=f"region:{i * num_regions // num_libraries}",
            )
            for i in range(num_libraries)
        )
        return cls(sites=sites, replicas=replicas, isolation=isolation)

    # ------------------------------------------------------------------ #
    # Domain views
    # ------------------------------------------------------------------ #

    @property
    def num_libraries(self) -> int:
        return len(self.sites)

    @property
    def placement_domains(self) -> Tuple[str, ...]:
        """Per-member domain names at the isolation level, member order."""
        if self.isolation == "library":
            return tuple(site.name for site in self.sites)
        return tuple(site.power_domain for site in self.sites)

    @property
    def library_domains(self) -> Tuple[str, ...]:
        """Each member's own failure domain, member order."""
        return tuple(site.name for site in self.sites)

    @property
    def power_domains(self) -> Tuple[str, ...]:
        """Distinct power domains, first-appearance order."""
        seen: List[str] = []
        for site in self.sites:
            if site.power_domain not in seen:
                seen.append(site.power_domain)
        return tuple(seen)

    def domains_of(self, member: int) -> Tuple[str, str, str]:
        """The nested failure domains of member ``member``."""
        return self.sites[member].domains

    # ------------------------------------------------------------------ #
    # Replica placement
    # ------------------------------------------------------------------ #

    def placement_for(self, object_index: int) -> Tuple[int, ...]:
        """Member indices holding object ``object_index``, primary first.

        A pure function of the object index (see
        :func:`repro.core.replication.place_across_domains`): no two
        returned members share an isolation-level domain, and the primary
        rotates across domains for load balance.
        """
        return place_across_domains(
            object_index, self.placement_domains, self.replicas
        )
