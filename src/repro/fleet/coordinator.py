"""The fleet coordinator: route, detect failure, fail over, hedge.

Composes N independent :class:`repro.core.sim.SimKernel` member
libraries behind one read path. The coordinator owns everything a
single library cannot: the replica map (:mod:`repro.fleet.topology`),
member-failure detection (per-request timeout plus capped-backoff
retry, reusing the :class:`repro.service.frontend.RetryPolicy` shape),
read failover to the next replica, and optional *hedged reads* — after
a deadline-aware delay the request is cloned to a second replica and
the first success wins (tie-broken by a seeded hash, so runs are
deterministic).

Execution model: domain outages are pure data
(:class:`repro.faults.FleetFaultSchedule`), so the whole routing plan —
which member serves each request, at what delayed submit time, which
requests hedge where — is computed up front. Member kernels then run
*independently* (they share no state), serially or on a process pool
(``workers``), and the merge walks requests in a fixed order. The
result is byte-identical for any worker count, which the multiprocess
determinism test pins.
"""

from __future__ import annotations

import hashlib
import json
import math
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..core.metrics import CompletionStats, FleetMetrics, MetricsRegistry
from ..core.sim import SimConfig
from ..faults import FleetFaultSchedule
from ..service.frontend import RetryPolicy
from ..workload.traces import ReadRequest, ReadTrace
from .topology import FleetTopology
from .workers import MemberJob, MemberResult, run_member

#: Default member-failure detection/retry ladder: archival timescales
#: (the front end's 60 s deadline is far too tight for glass reads).
FLEET_RETRY = RetryPolicy(
    max_attempts=4,
    backoff_base_seconds=10.0,
    backoff_cap_seconds=120.0,
    deadline_seconds=4 * 3600.0,
)


@dataclass(frozen=True)
class FleetConfig:
    """Topology, routing, and member knobs of one fleet run."""

    num_libraries: int = 3
    replicas: int = 2
    isolation: str = "power"
    libraries_per_power_domain: int = 2
    num_regions: int = 1
    #: template for every member kernel (seed is re-derived per member).
    member: SimConfig = field(default_factory=SimConfig)
    #: seconds before an unresponsive member is declared down.
    detect_timeout_seconds: float = 30.0
    #: failure-detection retry ladder (RetryPolicy shape; its deadline
    #: bounds both the routing ladder and hedge issuance).
    retry: RetryPolicy = FLEET_RETRY
    hedge: bool = False
    #: delay before cloning a read to a second replica.
    hedge_delay_seconds: float = 600.0
    workers: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.detect_timeout_seconds <= 0:
            raise ValueError("detect_timeout_seconds must be positive")
        if self.hedge_delay_seconds <= 0:
            raise ValueError("hedge_delay_seconds must be positive")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.member.tenancy is not None:
            raise ValueError(
                "fleet members run without tenancy (admission would break "
                "the coordinator's request alignment); apply QoS above the "
                "fleet instead"
            )

    def build_topology(self) -> FleetTopology:
        """The fleet layout this config describes."""
        return FleetTopology.build(
            num_libraries=self.num_libraries,
            replicas=self.replicas,
            libraries_per_power_domain=self.libraries_per_power_domain,
            num_regions=self.num_regions,
            isolation=self.isolation,
        )

    def member_config(self, member: int) -> SimConfig:
        """The member's kernel config: template + a derived unique seed."""
        return replace(self.member, seed=self.seed * 1000 + member)


@dataclass
class _Routed:
    """One fleet request's routing decision (internal plan row)."""

    index: int
    request: ReadRequest
    placement: Tuple[int, ...]
    served_member: Optional[int] = None
    submit_time: float = 0.0
    penalty_seconds: float = 0.0
    failed_over: bool = False
    lost: bool = False
    hedge_member: Optional[int] = None
    hedge_time: float = 0.0


@dataclass
class MemberSummary:
    """Per-member row of the fleet report."""

    site: str
    requests: int
    completed: int
    simulated_seconds: float

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed snapshot."""
        return {
            "completed": self.completed,
            "requests": self.requests,
            "simulated_seconds": self.simulated_seconds,
            "site": self.site,
        }


@dataclass
class FleetReport:
    """Everything one fleet run produces."""

    fleet: FleetMetrics
    completions: CompletionStats
    members: List[MemberSummary]

    def as_dict(self) -> Dict[str, Any]:
        """Stable-keyed snapshot of the whole report."""
        return {
            "completions": self.completions.as_dict(),
            "fleet": self.fleet.as_dict(),
            "members": [m.as_dict() for m in self.members],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def summary(self) -> str:
        """One-line operator view of the run."""
        return (
            f"{self.fleet.summary()} "
            f"tail={self.completions.tail_hours:.2f}h"
        )


class FleetCoordinator:
    """Routes reads across member libraries and survives domain outages."""

    def __init__(
        self, config: Optional[FleetConfig] = None, tracer=None, profiler=None
    ):
        self.config = config or FleetConfig()
        self.topology = self.config.build_topology()
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        #: optional duck-typed phase profiler (needs a ``scope(name)``
        #: context manager, e.g. :class:`repro.observability.profiler.
        #: PhaseProfiler`); the fleet layer never imports observability.
        self.profiler = profiler
        self.metrics = MetricsRegistry(prefix="fleet_")
        self.schedule: Optional[FleetFaultSchedule] = None
        self._trace: Optional[ReadTrace] = None
        self._measure = (0.0, math.inf)

    def trace_id(self, index: int) -> str:
        """Deterministic span id of one fleet request (seed + index).

        Stamped on every per-request ``fleet.*`` event so a request's
        routing, failover ladder, hedge, and completion join into one
        span regardless of which member library served it.
        """
        return f"fleet-{self.config.seed}-{index}"

    # ------------------------------------------------------------------ #
    # Inputs
    # ------------------------------------------------------------------ #

    def assign_trace(
        self, trace: ReadTrace, measure_start: float, measure_end: float
    ) -> None:
        """The fleet-wide read trace plus its measurement window."""
        self._trace = trace
        self._measure = (measure_start, measure_end)

    def apply_fault_schedule(self, schedule: FleetFaultSchedule) -> None:
        """Domain outages the routing plan must survive (pure data)."""
        self.schedule = schedule

    # ------------------------------------------------------------------ #
    # Phase 1: routing plan
    # ------------------------------------------------------------------ #

    def _down(self, member: int, t: float) -> bool:
        if self.schedule is None:
            return False
        return self.schedule.down(self.topology.domains_of(member), t)

    def _plan(self) -> List[_Routed]:
        assert self._trace is not None
        cfg = self.config
        plan: List[_Routed] = []
        if self.tracer is not None and self.schedule is not None:
            for outage in self.schedule:
                self.tracer.emit(
                    outage.start,
                    "fleet.domain_outage",
                    component=outage.domain,
                    duration_s=(-1.0 if not outage.repairs else outage.duration),
                    fault_kind=outage.kind.value,
                    correlated=outage.correlated,
                )
        for index, request in enumerate(self._trace):
            routed = _Routed(
                index=index,
                request=request,
                placement=self.topology.placement_for(index),
            )
            deadline = request.time + cfg.retry.deadline_seconds
            t = request.time
            for attempt in range(cfg.retry.max_attempts):
                member = routed.placement[attempt % len(routed.placement)]
                if not self._down(member, t):
                    routed.served_member = member
                    routed.submit_time = t
                    routed.penalty_seconds = t - request.time
                    routed.failed_over = attempt > 0
                    break
                # Declaring the member down costs the detection timeout,
                # then the capped backoff before the next replica is tried.
                retry_at = (
                    t
                    + cfg.detect_timeout_seconds
                    + cfg.retry.backoff(attempt + 1)
                )
                if self.tracer is not None:
                    self.tracer.emit(
                        t,
                        "fleet.failover",
                        request_id=index,
                        component=self.topology.sites[member].name,
                        trace_id=self.trace_id(index),
                        attempt=attempt + 1,
                        retry_at=retry_at,
                    )
                t = retry_at
                if t > deadline:
                    break
            else:
                routed.lost = True
            if routed.served_member is None:
                routed.lost = True
            if (
                not routed.lost
                and cfg.hedge
                and len(routed.placement) > 1
            ):
                hedge_time = routed.submit_time + cfg.hedge_delay_seconds
                # Deadline-aware: a clone that cannot start before the
                # request's deadline cannot help — skip it.
                if hedge_time < deadline:
                    for member in routed.placement:
                        if member == routed.served_member:
                            continue
                        if not self._down(member, hedge_time):
                            routed.hedge_member = member
                            routed.hedge_time = hedge_time
                            break
            if self.tracer is not None:
                attrs: Dict[str, Any] = {
                    "trace_id": self.trace_id(index),
                    "submit_s": routed.submit_time,
                    "penalty_s": routed.penalty_seconds,
                    "failed_over": routed.failed_over,
                    "lost": routed.lost,
                }
                component = None
                if routed.served_member is not None:
                    attrs["member"] = routed.served_member
                    component = self.topology.sites[routed.served_member].name
                if routed.hedge_member is not None:
                    attrs["hedge_member"] = routed.hedge_member
                    attrs["hedge_s"] = routed.hedge_time
                self.tracer.emit(
                    request.time,
                    "fleet.route",
                    request_id=index,
                    component=component,
                    **attrs,
                )
            plan.append(routed)
        return plan

    # ------------------------------------------------------------------ #
    # Phase 2: independent member runs
    # ------------------------------------------------------------------ #

    def _member_jobs(self, plan: List[_Routed]) -> List[MemberJob]:
        rows: Dict[int, List[Tuple[float, str, int]]] = {
            site.index: [] for site in self.topology.sites
        }
        for routed in plan:
            if routed.served_member is not None:
                rows[routed.served_member].append(
                    (routed.submit_time, f"{routed.index}:p",
                     routed.request.size_bytes)
                )
            if routed.hedge_member is not None:
                rows[routed.hedge_member].append(
                    (routed.hedge_time, f"{routed.index}:h",
                     routed.request.size_bytes)
                )
        # Sorted by (time, tag): ReadTrace re-sorts by time with a stable
        # sort, so the member's top-level request order matches the job's
        # row order exactly — the alignment run_member relies on.
        return [
            MemberJob(
                site_index=site.index,
                config=self.config.member_config(site.index),
                requests=tuple(sorted(rows[site.index])),
            )
            for site in self.topology.sites
        ]

    def _run_members(
        self, jobs: List[MemberJob], workers: int
    ) -> Dict[int, MemberResult]:
        if workers <= 1 or len(jobs) <= 1:
            results = [run_member(job) for job in jobs]
        else:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(jobs))
            ) as pool:
                results = list(pool.map(run_member, jobs))
        return {result.site_index: result for result in results}

    # ------------------------------------------------------------------ #
    # Phase 3: deterministic merge
    # ------------------------------------------------------------------ #

    def _hedge_tie_break(self, index: int) -> bool:
        """True when, on an exact tie, the hedge clone wins (seeded)."""
        digest = hashlib.sha256(
            f"{self.config.seed}:{index}".encode()
        ).digest()
        return bool(digest[0] & 1)

    def _merge(
        self,
        plan: List[_Routed],
        jobs: List[MemberJob],
        results: Dict[int, MemberResult],
    ) -> FleetReport:
        start, end = self._measure
        by_tag: Dict[int, Dict[str, Optional[float]]] = {}
        for job in jobs:
            tags = [tag for _, tag, _ in job.requests]
            by_tag[job.site_index] = dict(
                zip(tags, results[job.site_index].completions)
            )
        fleet = FleetMetrics(
            libraries=self.topology.num_libraries,
            replicas=self.topology.replicas,
            domain_outages=len(self.schedule) if self.schedule else 0,
        )
        latencies: List[float] = []
        for routed in plan:
            measured = start <= routed.request.time < end
            primary = None
            if routed.served_member is not None:
                primary = by_tag[routed.served_member].get(
                    f"{routed.index}:p"
                )
            hedge = None
            if routed.hedge_member is not None:
                hedge = by_tag[routed.hedge_member].get(f"{routed.index}:h")
            # A hedge is only *issued* if the primary is still outstanding
            # when the delay elapses — otherwise the coordinator would
            # have canceled the clone. (The plan submits clones
            # pessimistically, so a discarded clone's load still queued on
            # the replica: the simulated hedging tax is conservative.)
            hedge_issued = hedge is not None and (
                primary is None or primary > routed.hedge_time
            )
            hedge_won = hedge_issued and (
                primary is None
                or hedge < primary
                or (hedge == primary and self._hedge_tie_break(routed.index))
            )
            completion = hedge if hedge_won else primary
            serving = (
                routed.hedge_member if hedge_won else routed.served_member
            )
            if self.tracer is not None and hedge_issued:
                self.tracer.emit(
                    routed.hedge_time,
                    "fleet.hedge",
                    request_id=routed.index,
                    component=self.topology.sites[routed.hedge_member].name,
                    trace_id=self.trace_id(routed.index),
                    delay_s=self.config.hedge_delay_seconds,
                    won=hedge_won,
                )
            if (
                self.tracer is not None
                and completion is not None
                and serving is not None
            ):
                self.tracer.emit(
                    completion,
                    "fleet.complete",
                    request_id=routed.index,
                    component=self.topology.sites[serving].name,
                    trace_id=self.trace_id(routed.index),
                    served_by=serving,
                    hedge_won=hedge_won,
                    latency_s=completion - routed.request.time,
                )
            if not measured:
                continue
            fleet.requests_submitted += 1
            if routed.lost:
                fleet.replication_lost += 1
                continue
            if routed.failed_over:
                fleet.failovers += 1
                fleet.failover_seconds += routed.penalty_seconds
            if hedge_issued:
                fleet.hedges_issued += 1
                if hedge_won:
                    fleet.hedge_wins += 1
            if completion is None:
                continue
            fleet.requests_served += 1
            if serving != routed.placement[0]:
                fleet.served_degraded += 1
            latencies.append(completion - routed.request.time)
        fleet.publish(self.metrics)
        members = [
            MemberSummary(
                site=site.name,
                requests=len(jobs[site.index].requests),
                completed=results[site.index].requests_completed,
                simulated_seconds=results[site.index].simulated_seconds,
            )
            for site in self.topology.sites
        ]
        return FleetReport(
            fleet=fleet,
            completions=CompletionStats.from_times(latencies),
            members=members,
        )

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def run(self, workers: Optional[int] = None) -> FleetReport:
        """Plan routing, run members (serially or pooled), merge.

        When a phase profiler is attached, each coordinator phase runs
        under a nested ``fleet/...`` scope so fleet orchestration shows
        up in the subsystem wall-share story beside the member kernels'
        event-loop time.
        """
        if self._trace is None:
            raise RuntimeError("assign_trace() before run()")
        scope = (
            self.profiler.scope
            if self.profiler is not None
            else (lambda name: nullcontext())
        )
        with scope("fleet"):
            with scope("plan"):
                plan = self._plan()
                jobs = self._member_jobs(plan)
            with scope("members"):
                results = self._run_members(
                    jobs, self.config.workers if workers is None else workers
                )
            with scope("merge"):
                return self._merge(plan, jobs, results)
