"""Process-pool execution of member library kernels.

Member kernels share no state — each is a self-contained discrete-event
simulation of one library — so the fleet coordinator can run them on a
:class:`concurrent.futures.ProcessPoolExecutor`. This module holds the
*picklable* job/result types and the top-level worker function the pool
needs (a nested function or lambda cannot cross a process boundary).

Determinism contract: a member's outcome is a pure function of its
``(config, requests)`` job — the kernel draws every random quantity from
``config.seed`` — so running members serially, or on 4 workers, or on
400, produces byte-identical results. The multiprocess-determinism test
pins exactly this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.sim import SimConfig, SimKernel
from ..workload.traces import ReadRequest, ReadTrace


@dataclass(frozen=True)
class MemberJob:
    """Everything one member kernel run needs, picklable.

    ``requests`` rows are ``(submit_time, tag, size_bytes)``: the
    coordinator's routing plan already folded failover penalties into
    the submit times, and ``tag`` carries the fleet request identity
    (``"<index>:p"`` primary / ``"<index>:h"`` hedge clone) back out.
    """

    site_index: int
    config: SimConfig
    requests: Tuple[Tuple[float, str, int], ...]


@dataclass(frozen=True)
class MemberResult:
    """One member kernel's outcome, aligned with its job's requests.

    ``completions[i]`` is the absolute completion time of
    ``job.requests[i]`` (``None`` if the member's own recovery machinery
    abandoned it), in the same order the job listed them.
    """

    site_index: int
    completions: Tuple[Optional[float], ...]
    requests_completed: int
    simulated_seconds: float


def run_member(job: MemberJob) -> MemberResult:
    """Run one member kernel to quiescence (top-level: pool-picklable).

    The member measures everything (window ``[0, inf)``): fleet-level
    measurement filtering happens in the coordinator's merge, keyed by
    the *original* arrival times, which routing delays must not shift.
    """
    trace = ReadTrace(
        ReadRequest(time=time, file_id=tag, size_bytes=size)
        for time, tag, size in job.requests
    )
    kernel = SimKernel(job.config)
    kernel.lifecycle.assign_trace(trace, 0.0, math.inf)
    report = kernel.run()
    tops = [r for r in kernel.lifecycle.all_requests if r.parent is None]
    if len(tops) != len(job.requests):
        raise RuntimeError(
            f"member {job.site_index}: {len(tops)} top-level requests for "
            f"{len(job.requests)} submissions — trace/request alignment lost"
        )
    completions: List[Optional[float]] = [
        (r.completion if r.done else None) for r in tops
    ]
    return MemberResult(
        site_index=job.site_index,
        completions=tuple(completions),
        requests_completed=report.requests_completed,
        simulated_seconds=report.simulated_seconds,
    )
