"""Multi-library fleet: replicated archival storage across failure domains.

A single library is itself a failure domain; the paper's availability
story completes only at the region level, where replicas in other
domains survive a whole-library loss. This package composes N
independent :class:`repro.core.sim.SimKernel` member libraries behind a
:class:`~repro.fleet.coordinator.FleetCoordinator`:

- :mod:`~repro.fleet.topology` — named failure domains (library,
  rack-row power, region) and the deterministic k-of-n replica map;
- :mod:`~repro.fleet.coordinator` — routing, member-failure detection
  (timeout + capped-backoff retry), replica failover, hedged reads;
- :mod:`~repro.fleet.workers` — picklable member jobs for process-pool
  execution (``--workers N``).

Layer contract (enforced by ``tools/check_layers.py``): the fleet sits
*above* the kernel. It drives members through the ``repro.core.sim``
package surface and its ``hooks`` protocols only — never the kernel's
internal subsystem modules — and ``repro.core.sim`` never imports
``repro.fleet`` back.
"""

from .coordinator import (
    FleetConfig,
    FleetCoordinator,
    FleetReport,
    MemberSummary,
)
from .topology import FleetTopology, LibrarySite
from .workers import MemberJob, MemberResult, run_member

__all__ = [
    "FleetConfig",
    "FleetCoordinator",
    "FleetReport",
    "FleetTopology",
    "LibrarySite",
    "MemberJob",
    "MemberResult",
    "MemberSummary",
    "run_member",
]
