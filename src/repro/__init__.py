"""repro — an open reproduction of Project Silica (SOSP 2023).

Silica is a cloud archival storage system underpinned by quartz glass: a
WORM medium with no bit rot over 1000+ years, read by polarization
microscopy and written by femtosecond lasers, served by a robotic library
of free-roaming shuttles. This package rebuilds the complete system in
Python — media model, error correction (LDPC + three-level network coding),
the glass library with its scheduler and traffic management, the ML decode
stack, data layout policies, the archival service front end, and the
full-system discrete event simulator used to reproduce every figure and
table of the paper's evaluation.

Quickstart::

    from repro.core import LibrarySimulation, SimConfig
    from repro.workload import WorkloadGenerator, IOPS

    generator = WorkloadGenerator(seed=0)
    trace, start, end = IOPS.trace(generator)
    sim = LibrarySimulation(SimConfig(num_shuttles=20))
    sim.assign_trace(trace, start, end)
    report = sim.run()
    print(report.summary())

Subpackages
-----------

- :mod:`repro.core` — discrete event simulator, scheduler, traffic policies
- :mod:`repro.media` — platters, voxel modulation, drives, read channel
- :mod:`repro.ecc` — LDPC, CRC, GF(256) network coding, durability math
- :mod:`repro.library` — racks/shelves/slots, shuttles, motion models, failures
- :mod:`repro.layout` — file packing, platter placement, platter-sets, metadata
- :mod:`repro.workload` — calibrated cloud archival workload generator
- :mod:`repro.decode` — sector imaging, numpy voxel-net, elastic decode pipeline
- :mod:`repro.service` — staging, verification, put/get/delete front end
- :mod:`repro.costs` — tape-vs-glass sustainability model (Table 2)
- :mod:`repro.observability` — structured tracing, spans, metrics export
"""

__version__ = "1.0.0"

from . import (
    core,
    costs,
    decode,
    ecc,
    layout,
    library,
    media,
    observability,
    service,
    workload,
)

__all__ = [
    "core",
    "costs",
    "decode",
    "ecc",
    "layout",
    "library",
    "media",
    "observability",
    "service",
    "workload",
    "__version__",
]
