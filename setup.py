"""Legacy setup shim.

Kept so ``pip install -e .`` / ``python setup.py develop`` work in offline
environments that lack the ``wheel`` package (modern editable installs build
a wheel; the legacy develop path does not). All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
